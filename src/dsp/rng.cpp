#include "dsp/rng.h"

#include <cmath>

namespace wlansim::dsp {

void Mt19937_64::regen() {
  constexpr std::uint64_t kMatrixA = 0xb5026f5aa96619e9ull;
  constexpr std::uint64_t kUpperMask = 0xffffffff80000000ull;
  constexpr std::uint64_t kLowerMask = 0x000000007fffffffull;
  std::uint64_t* x = state_;
  // Three ranges so x[i + kM] / x[i + kM - kN] never wraps inside a loop;
  // (-(y & 1)) & kMatrixA is the branchless conditional-xor — the data-
  // dependent branch form mispredicts half the time and dominates the
  // twist.
  for (std::size_t i = 0; i < kN - kM; ++i) {
    const std::uint64_t y = (x[i] & kUpperMask) | (x[i + 1] & kLowerMask);
    x[i] = x[i + kM] ^ (y >> 1) ^ ((-(y & 1ull)) & kMatrixA);
  }
  for (std::size_t i = kN - kM; i < kN - 1; ++i) {
    const std::uint64_t y = (x[i] & kUpperMask) | (x[i + 1] & kLowerMask);
    x[i] = x[i + kM - kN] ^ (y >> 1) ^ ((-(y & 1ull)) & kMatrixA);
  }
  {
    const std::uint64_t y = (x[kN - 1] & kUpperMask) | (x[0] & kLowerMask);
    x[kN - 1] = x[kM - 1] ^ (y >> 1) ^ ((-(y & 1ull)) & kMatrixA);
  }
  for (std::size_t i = 0; i < kN; ++i) {
    std::uint64_t z = x[i];
    z ^= (z >> 29) & 0x5555555555555555ull;
    z ^= (z << 17) & 0x71d67fffeda60000ull;
    z ^= (z << 37) & 0xfff7eee000000000ull;
    z ^= z >> 43;
    out_[i] = z;
  }
  idx_ = 0;
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(gen_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
}

bool Rng::bit() { return (gen_() & 1u) != 0; }

void Rng::bytes(std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(gen_() & 0xff);
  }
}

void Rng::fill_gaussian(double* dst, std::size_t n) {
  std::size_t i = 0;
  if (saved_available_ && i < n) {
    saved_available_ = false;
    dst[i++] = saved_;
  }
  // A full pair per iteration: a lone gaussian() call hands out y*mult and
  // banks x*mult, so two successive draws are exactly (y*mult, x*mult).
  while (n - i >= 2) {
    double x, y, r2;
    do {
      x = 2.0 * canonical_() - 1.0;
      y = 2.0 * canonical_() - 1.0;
      r2 = x * x + y * y;
    } while (r2 > 1.0 || r2 == 0.0);
    const double mult = std::sqrt(-2.0 * std::log(r2) / r2);
    dst[i++] = y * mult;
    dst[i++] = x * mult;
  }
  if (i < n) {
    dst[i] = gaussian();  // banks the leftover half-pair in saved_
  }
}

Rng Rng::fork() {
  // Mix the next raw draw so sibling forks are decorrelated.
  const std::uint64_t s = gen_() ^ 0x9e3779b97f4a7c15ull;
  return Rng(s);
}

}  // namespace wlansim::dsp
