// Counting replacements for the global allocation functions. Defining
// these in exactly one translation unit of an executable replaces the
// toolchain's versions (C++ [replacement.functions]); the counters are
// thread_local so concurrent workers don't interfere.
#include "testsupport/alloc_hook.h"

#include <cstdlib>
#include <new>

namespace {

thread_local std::uint64_t g_count = 0;
thread_local std::uint64_t g_bytes = 0;

void* counted_alloc(std::size_t size) {
  ++g_count;
  g_bytes += size;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  ++g_count;
  g_bytes += size;
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc();
}

}  // namespace

namespace wlansim::testhook {

std::uint64_t allocation_count() { return g_count; }
std::uint64_t allocation_bytes() { return g_bytes; }
void reset_allocation_count() {
  g_count = 0;
  g_bytes = 0;
}

}  // namespace wlansim::testhook

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_count;
  g_bytes += size;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_count;
  g_bytes += size;
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
