// Heap-allocation counter for tests and benchmarks: this library replaces
// the global operator new/delete with counting versions. Link it ONLY into
// test/bench executables — production targets must not pay the counter.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wlansim::testhook {

/// Number of heap allocations (any operator new) performed by the calling
/// thread since the last reset_allocation_count().
std::uint64_t allocation_count();

/// Bytes requested by those allocations.
std::uint64_t allocation_bytes();

void reset_allocation_count();

}  // namespace wlansim::testhook
