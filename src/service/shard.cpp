#include "service/shard.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "service/checkpoint.h"

namespace wlansim::service {

namespace {

bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, const Json& j) { return send_all(fd, j.dump() + "\n"); }

/// Has the peer closed (or errored) its end? One-byte peek without
/// consuming: EAGAIN means "alive, nothing to read", 0 means EOF.
bool peer_gone(int fd) {
  char b;
  const ssize_t n = ::recv(fd, &b, 1, MSG_DONTWAIT | MSG_PEEK);
  if (n > 0) return false;
  if (n == 0) return true;
  return !(errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR);
}

std::filesystem::path resolve_worker_binary(
    const std::filesystem::path& hint) {
  if (!hint.empty()) return hint;
  if (const char* env = std::getenv("WLANSIM_DAEMON_BIN")) {
    if (*env != '\0') return env;
  }
  std::error_code ec;
  const std::filesystem::path self =
      std::filesystem::read_symlink("/proc/self/exe", ec);
  if (ec) return {};
  if (self.filename() == "wlansim_daemon") return self;
  // A sibling (installed layouts) or ../tools/ (test and bench binaries in
  // the build tree) — whichever exists.
  const std::filesystem::path sibling = self.parent_path() / "wlansim_daemon";
  if (std::filesystem::exists(sibling, ec)) return sibling;
  const std::filesystem::path tools =
      self.parent_path().parent_path() / "tools" / "wlansim_daemon";
  if (std::filesystem::exists(tools, ec)) return tools;
  return {};
}

}  // namespace

int connect_unix_retry(const std::filesystem::path& path, int timeout_ms) {
  const std::string p = path.string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (p.empty() || p.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  int backoff_ms = 10;
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    // Retry only the startup race: socket file not yet created (ENOENT)
    // or bound-but-not-listening leftovers (ECONNREFUSED). Anything else
    // (EACCES, path too long, ...) will not heal by waiting.
    if (err != ENOENT && err != ECONNREFUSED) return -1;
    if (std::chrono::steady_clock::now() >= deadline) return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 200);
  }
}

std::vector<std::vector<std::size_t>> shard_partition(std::size_t n,
                                                      std::size_t shards) {
  const std::size_t s = std::min(std::max<std::size_t>(shards, 1), std::max<std::size_t>(n, 1));
  std::vector<std::vector<std::size_t>> parts(n == 0 ? 0 : s);
  for (std::size_t i = 0; i < n; ++i) parts[i % s].push_back(i);
  return parts;
}

std::vector<core::SweepPointProgress> merge_progress(
    std::span<const core::SweepPointProgress> a,
    std::span<const core::SweepPointProgress> b, std::size_t n) {
  if (!a.empty() && a.size() != n)
    throw std::invalid_argument("merge_progress: size mismatch");
  if (!b.empty() && b.size() != n)
    throw std::invalid_argument("merge_progress: size mismatch");
  std::vector<core::SweepPointProgress> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const core::SweepPointProgress pa = a.empty() ? core::SweepPointProgress{}
                                                  : a[i];
    const core::SweepPointProgress pb = b.empty() ? core::SweepPointProgress{}
                                                  : b[i];
    out[i] = pb.packets > pa.packets ? pb : pa;
  }
  return out;
}

// --- Worker side ------------------------------------------------------------

bool serve_shard(int fd, const ShardRequest& req,
                 const ShardServeOptions& opts) {
  const std::string key = cold_pass_key(req.links, req.rule);
  const bool ckpt = !key.empty() && !opts.checkpoint_dir.empty();

  std::vector<core::SweepPointProgress> seed = req.resume;
  if (ckpt) {
    if (auto local = load_checkpoint(opts.checkpoint_dir, key,
                                     req.links.size())) {
      seed = merge_progress(seed, *local, req.links.size());
    }
  }
  std::uint64_t resumed = 0;
  for (const core::SweepPointProgress& p : seed) resumed += p.packets;

  core::SweepOptions sopts;
  sopts.threads = req.threads;
  const std::size_t report_every = std::max<std::size_t>(
      req.report_every_waves, 1);
  const std::size_t ckpt_every = std::max<std::size_t>(
      opts.checkpoint_every_waves, 1);

  core::AdaptiveResume resume;
  auto run_once = [&](std::vector<core::SweepPointProgress> start) {
    resume = core::AdaptiveResume{};
    resume.progress = std::move(start);
    std::size_t wave = 0;
    resume.on_wave = [&, wave](
                         std::span<const core::SweepPointProgress> ps) mutable {
      const bool stopping = opts.stop && opts.stop->load();
      if (stopping || peer_gone(fd)) {
        if (ckpt) save_checkpoint(opts.checkpoint_dir, key, ps);
        return false;
      }
      ++wave;
      if (wave % ckpt_every == 0 && ckpt)
        save_checkpoint(opts.checkpoint_dir, key, ps);
      if (wave % report_every == 0) {
        if (!send_line(fd, shard_progress_response(ps))) {
          if (ckpt) save_checkpoint(opts.checkpoint_dir, key, ps);
          return false;
        }
      }
      return true;
    };
    return core::sweep_ber_adaptive_resumable(req.links, req.rule, sopts,
                                              &resume);
  };

  std::vector<core::BerResult> results;
  try {
    results = run_once(std::move(seed));
  } catch (const std::invalid_argument&) {
    // Stale or incompatible resume state (e.g. saved under a different
    // cap): clean cold re-run, exactly as the single-process path does.
    resumed = 0;
    results = run_once({});
  }
  if (resume.preempted) return false;
  if (ckpt) remove_checkpoint(opts.checkpoint_dir, key);
  return send_line(fd, shard_done_response(results, resume.progress, resumed));
}

// --- Coordinator ------------------------------------------------------------

ShardCoordinator::ShardCoordinator(Options opts) : opts_(std::move(opts)) {
  if (opts_.workers > 0) {
    static std::atomic<unsigned> seq{0};
    spawn_dir_ = std::filesystem::temp_directory_path() /
                 ("wlansim-shard-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seq.fetch_add(1)));
    std::filesystem::create_directories(spawn_dir_);
  }
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    Worker w;
    w.socket = spawn_dir_ / ("w" + std::to_string(i) + ".sock");
    w.spawned = true;
    workers_.push_back(std::move(w));
  }
  for (const std::filesystem::path& sock : opts_.attach_sockets) {
    Worker w;
    w.socket = sock;
    w.spawned = false;
    workers_.push_back(std::move(w));
  }
}

ShardCoordinator::~ShardCoordinator() {
  for (Worker& w : workers_) {
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
  }
  // SIGTERM our spawned workers, give them a moment, then SIGKILL: the
  // coordinator owns their lifetime, and a worker parked between shards
  // exits promptly on SIGTERM.
  for (Worker& w : workers_) {
    if (!w.spawned || w.pid <= 0) continue;
    ::kill(w.pid, SIGTERM);
  }
  for (Worker& w : workers_) {
    if (!w.spawned || w.pid <= 0) continue;
    bool reaped = false;
    for (int i = 0; i < 100; ++i) {  // ~2 s
      if (::waitpid(w.pid, nullptr, WNOHANG) == w.pid) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (!reaped) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
    }
    w.pid = -1;
  }
  if (!spawn_dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(spawn_dir_, ec);
  }
}

std::size_t ShardCoordinator::num_workers() const { return workers_.size(); }

std::vector<pid_t> ShardCoordinator::worker_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pid_t> pids;
  for (const Worker& w : workers_)
    if (w.spawned && w.pid > 0) pids.push_back(w.pid);
  return pids;
}

void ShardCoordinator::close_worker(Worker& w) {
  if (w.fd >= 0) ::close(w.fd);
  w.fd = -1;
  w.rx.clear();
  w.shard = -1;
}

void ShardCoordinator::respawn(Worker& w) {
  close_worker(w);
  if (!w.spawned) return;
  if (w.pid > 0) {
    // Collect the corpse (or evict a wedged survivor) before reusing the
    // socket path.
    if (::waitpid(w.pid, nullptr, WNOHANG) == 0) {
      ::kill(w.pid, SIGKILL);
      ::waitpid(w.pid, nullptr, 0);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      w.pid = -1;
      ++stats_.worker_respawns;
    }
  }
  const std::filesystem::path bin = resolve_worker_binary(opts_.worker_binary);
  if (bin.empty()) return;
  // Strings must outlive execl; build them before fork. Between fork and
  // exec only async-signal-safe calls are legal (this process has threads).
  const std::string bin_s = bin.string();
  const std::string sock_s = w.socket.string();
  const std::string ckpt_s = opts_.checkpoint_dir.string();
  const std::string every_s = std::to_string(opts_.checkpoint_every_waves);
  ::unlink(sock_s.c_str());
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (ckpt_s.empty()) {
      ::execl(bin_s.c_str(), "wlansim_daemon", "--worker", "--socket",
              sock_s.c_str(), "--checkpoint-every", every_s.c_str(),
              static_cast<char*>(nullptr));
    } else {
      ::execl(bin_s.c_str(), "wlansim_daemon", "--worker", "--socket",
              sock_s.c_str(), "--checkpoint-dir", ckpt_s.c_str(),
              "--checkpoint-every", every_s.c_str(),
              static_cast<char*>(nullptr));
    }
    ::_exit(127);
  }
  if (pid > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    w.pid = pid;
  }
}

bool ShardCoordinator::ensure_worker(Worker& w) {
  if (w.fd >= 0) return true;
  w.rx.clear();
  if (w.spawned) {
    const bool alive =
        w.pid > 0 && ::waitpid(w.pid, nullptr, WNOHANG) == 0;
    if (!alive) respawn(w);
    if (w.pid <= 0) return false;
    w.fd = connect_unix_retry(w.socket, /*timeout_ms=*/10000);
  } else {
    w.fd = connect_unix_retry(w.socket, /*timeout_ms=*/2000);
  }
  return w.fd >= 0;
}

bool ShardCoordinator::dispatch(Worker& w, int shard_index,
                                const ShardRequest& req) {
  if (!ensure_worker(w)) return false;
  if (!send_all(w.fd, req.to_json().dump() + "\n")) {
    close_worker(w);
    return false;
  }
  w.shard = shard_index;
  return true;
}

std::vector<core::BerResult> ShardCoordinator::run(
    std::span<const core::LinkConfig> configs, const sim::StoppingRule& rule,
    const core::SweepOptions& sweep_opts) {
  const std::size_t n = configs.size();
  if (n == 0) return {};

  // The whole-pass checkpoint uses the SAME key (and directory) as the
  // single-process run_cold_pass_checkpointed path, so a preempted
  // sharded pass resumes under any later worker count — including zero.
  const std::string key = cold_pass_key(configs, rule);
  const bool ckpt = !key.empty() && !opts_.checkpoint_dir.empty();
  std::vector<core::SweepPointProgress> latest(n);
  if (ckpt) {
    if (auto loaded = load_checkpoint(opts_.checkpoint_dir, key, n))
      latest = std::move(*loaded);
  }

  struct Task {
    std::vector<std::size_t> indices;  ///< original positions of this shard
    std::vector<core::SweepPointProgress> progress;  ///< latest view
    std::vector<core::BerResult> results;
    std::uint64_t resumed_packets = 0;
    bool done = false;
  };

  const std::vector<std::vector<std::size_t>> parts =
      shard_partition(n, std::max<std::size_t>(num_workers(), 1));
  std::vector<Task> tasks(parts.size());
  for (std::size_t s = 0; s < parts.size(); ++s) {
    tasks[s].indices = parts[s];
    tasks[s].progress.reserve(parts[s].size());
    for (const std::size_t i : parts[s]) tasks[s].progress.push_back(latest[i]);
  }

  const auto make_request = [&](const Task& t) {
    ShardRequest req;
    req.links.reserve(t.indices.size());
    for (const std::size_t i : t.indices) req.links.push_back(configs[i]);
    req.rule = rule;
    req.threads = opts_.worker_threads != 0 ? opts_.worker_threads
                                            : sweep_opts.threads;
    req.report_every_waves = std::max<std::size_t>(
        opts_.checkpoint_every_waves, 1);
    bool any = false;
    for (const core::SweepPointProgress& p : t.progress) any |= p.packets > 0;
    if (any) req.resume = t.progress;
    return req;
  };

  const auto save_merged = [&] {
    if (!ckpt) return;
    for (const Task& t : tasks)
      for (std::size_t k = 0; k < t.indices.size(); ++k)
        latest[t.indices[k]] = t.progress[k];
    save_checkpoint(opts_.checkpoint_dir, key, latest);
  };

  const auto stopping = [&] { return opts_.stop && opts_.stop->load(); };

  std::vector<int> pending;  // task indices awaiting a worker
  for (std::size_t s = 0; s < tasks.size(); ++s)
    pending.push_back(static_cast<int>(s));
  std::size_t done_count = 0;

  const auto assign_pending = [&] {
    auto it = pending.begin();
    while (it != pending.end()) {
      bool assigned = false;
      for (Worker& w : workers_) {
        if (w.shard != -1) continue;
        if (dispatch(w, *it, make_request(tasks[*it]))) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.shards;
          }
          assigned = true;
          break;
        }
      }
      if (!assigned) break;  // no dispatchable worker right now
      it = pending.erase(it);
    }
  };

  // Run a shard in-process — the last-resort path when every worker is
  // unreachable (binary missing, all sockets dead). Same purity, same
  // results; the pass always completes.
  const auto run_local = [&](Task& t) {
    std::vector<core::LinkConfig> links;
    links.reserve(t.indices.size());
    for (const std::size_t i : t.indices) links.push_back(configs[i]);
    core::AdaptiveResume resume;
    bool any = false;
    for (const core::SweepPointProgress& p : t.progress) any |= p.packets > 0;
    if (any) resume.progress = t.progress;
    resume.on_wave = [&](std::span<const core::SweepPointProgress> ps) {
      if (!stopping()) return true;
      t.progress.assign(ps.begin(), ps.end());
      return false;
    };
    std::vector<core::BerResult> results;
    try {
      results = core::sweep_ber_adaptive_resumable(links, rule, sweep_opts,
                                                   &resume);
    } catch (const std::invalid_argument&) {
      resume = core::AdaptiveResume{};
      resume.on_wave = [&](std::span<const core::SweepPointProgress> ps) {
        if (!stopping()) return true;
        t.progress.assign(ps.begin(), ps.end());
        return false;
      };
      results = core::sweep_ber_adaptive_resumable(links, rule, sweep_opts,
                                                   &resume);
    }
    if (resume.preempted) {
      save_merged();
      throw PreemptedError("sharded cold pass preempted: checkpoint saved");
    }
    t.results = std::move(results);
    t.done = true;
    ++done_count;
  };

  assign_pending();

  while (done_count < tasks.size()) {
    if (stopping()) {
      save_merged();
      for (Worker& w : workers_) close_worker(w);
      throw PreemptedError(
          "sharded cold pass preempted: progress checkpointed");
    }

    // Nothing running and nothing dispatchable: fall back to in-process
    // execution of the remaining shards rather than spinning forever.
    const bool any_active = [&] {
      for (const Worker& w : workers_)
        if (w.shard != -1) return true;
      return false;
    }();
    if (!any_active) {
      if (pending.empty()) break;  // all done
      std::vector<int> rest;
      std::swap(rest, pending);
      for (const int t : rest) run_local(tasks[t]);
      continue;
    }

    std::vector<pollfd> pfds;
    std::vector<Worker*> polled;
    for (Worker& w : workers_) {
      if (w.shard == -1) continue;
      pfds.push_back({w.fd, POLLIN, 0});
      polled.push_back(&w);
    }
    const int rc = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/200);
    if (rc < 0 && errno != EINTR)
      throw std::runtime_error(std::string("shard poll(): ") +
                               std::strerror(errno));

    for (std::size_t p = 0; p < pfds.size(); ++p) {
      if (!(pfds[p].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Worker& w = *polled[p];
      char chunk[4096];
      const ssize_t nr = ::recv(w.fd, chunk, sizeof(chunk), 0);
      if (nr <= 0) {
        if (nr < 0 && errno == EINTR) continue;
        // Worker lost mid-shard (SIGKILL, crash, socket teardown): its
        // last progress report seeds the reassignment — at most
        // report_every_waves quanta redone.
        const int t = w.shard;
        close_worker(w);
        if (w.spawned) respawn(w);
        if (t >= 0 && !tasks[t].done) {
          pending.push_back(t);
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.reassigned;
        }
        continue;
      }
      w.rx.append(chunk, static_cast<std::size_t>(nr));
      std::size_t nl;
      while (w.shard != -1 && (nl = w.rx.find('\n')) != std::string::npos) {
        const std::string line = w.rx.substr(0, nl);
        w.rx.erase(0, nl + 1);
        if (line.empty()) continue;
        std::string perr;
        const std::optional<Json> j = Json::parse(line, &perr);
        if (!j) throw std::runtime_error("shard worker sent bad JSON: " + perr);
        const ShardReply reply = shard_reply_from_json(*j);
        Task& t = tasks[w.shard];
        t.progress = reply.progress;
        if (reply.done) {
          t.results = reply.results;
          t.resumed_packets = reply.resumed_packets;
          t.done = true;
          ++done_count;
          w.shard = -1;
        } else {
          save_merged();
        }
      }
    }
    assign_pending();
  }

  std::vector<core::BerResult> out(n);
  for (const Task& t : tasks)
    for (std::size_t k = 0; k < t.indices.size(); ++k)
      out[t.indices[k]] = t.results[k];
  if (ckpt) remove_checkpoint(opts_.checkpoint_dir, key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.passes;
    stats_.last_resumed_packets.clear();
    for (const Task& t : tasks)
      stats_.last_resumed_packets.push_back(t.resumed_packets);
  }
  return out;
}

ShardStats ShardCoordinator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace wlansim::service
