// Minimal JSON value for the wlansim service protocol (newline-delimited
// JSON over a Unix-domain socket — see service/protocol.h).
//
// Why not a library: the container ships no JSON dependency, and the
// protocol needs one property most general-purpose parsers do not
// guarantee — numeric round-trips that preserve the engine's determinism
// contract. Doubles serialize with the shortest decimal representation
// that parses back to the identical bit pattern (the same scheme as the
// scenario trace writer), and unsigned 64-bit integers (config seeds) keep
// an exact integer channel rather than being squeezed through a double's
// 53-bit mantissa.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wlansim::service {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  /// Insertion-ordered: dumps reproduce field order, so a serialized
  /// message is a deterministic function of how it was built.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  static Json boolean(bool b);
  /// A double. Integral values in [0, 2^53] also carry the exact-integer
  /// channel so they dump without a decimal point.
  static Json number(double v);
  /// An exact unsigned 64-bit integer (dumps all 20 digits when needed).
  static Json number_u64(std::uint64_t v);
  static Json string(std::string s);
  static Json array(Array items = {});
  static Json object(Object members = {});

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed access; throws std::runtime_error on a type mismatch (protocol
  /// handlers turn that into an error response).
  bool as_bool() const;
  double as_double() const;
  /// Exact when the value was parsed/built as an integer; a plain double
  /// converts only when integral and exactly representable.
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup (first match); nullptr when absent or not an
  /// object.
  const Json* find(std::string_view key) const;

  /// Building helpers (no-ops unless the value is the right container).
  void set(std::string key, Json v);
  void push_back(Json v);

  /// Serialize on one line (no newline appended) — ready for the
  /// newline-delimited wire format.
  std::string dump() const;

  /// Parse one complete JSON document; trailing whitespace is allowed,
  /// trailing garbage is not. Returns nullopt and fills `err` on failure.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* err = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  bool has_u64_ = false;  ///< the exact-integer channel is authoritative
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace wlansim::service
