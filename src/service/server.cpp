#include "service/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "service/checkpoint.h"
#include "service/shard.h"

namespace wlansim::service {

namespace {

/// Write the whole buffer, riding out EINTR and partial writes. MSG_NOSIGNAL
/// turns a vanished client into an error return instead of SIGPIPE.
bool send_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Options opts)
    : opts_(std::move(opts)), scheduler_(opts_.scheduler) {
  const std::string path = opts_.socket_path.string();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("Server: socket path empty or too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("Server: socket(): ") +
                             std::strerror(errno));
  ::unlink(path.c_str());  // the daemon owns its path; stale files go
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("Server: bind(" + path +
                             "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path.c_str());
    throw std::runtime_error(std::string("Server: listen(): ") +
                             std::strerror(err));
  }
}

Server::~Server() {
  request_stop();
  scheduler_.stop();
  teardown_connections();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::unlink(opts_.socket_path.string().c_str());
}

void Server::request_stop() { stop_.store(true); }

void Server::reap_finished() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    Connection& c = **it;
    if (!c.done.load()) {
      ++it;
      continue;
    }
    if (c.thread.joinable()) c.thread.join();
    if (c.fd >= 0) ::close(c.fd);
    c.fd = -1;
    it = connections_.erase(it);
  }
}

void Server::teardown_connections() {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& c : connections_)
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
  }
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& c : connections_) {
    if (c->thread.joinable()) c->thread.join();
    if (c->fd >= 0) ::close(c->fd);
    c->fd = -1;
  }
  connections_.clear();
}

void Server::run(const std::atomic<bool>* external_stop) {
  while (!stop_.load() && !(external_stop && external_stop->load())) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (rc < 0) {
      if (errno == EINTR) continue;  // a signal set the stop flag; re-check
      break;
    }
    reap_finished();
    if (rc == 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
  }
  stop_.store(true);

  // Teardown order matters: shutdown() first unblocks threads parked in
  // recv(); stopping the scheduler next fails any job future a connection
  // thread is blocked on (preempting + checkpointing an in-flight cold
  // pass); only then can every thread be joined.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& c : connections_)
      if (c->fd >= 0) ::shutdown(c->fd, SHUT_RD);
  }
  scheduler_.stop();
  teardown_connections();
}

std::string Server::handle_line(const std::string& line) {
  std::string parse_err;
  const std::optional<Json> req = Json::parse(line, &parse_err);
  if (!req)
    return error_response("bad request: " + parse_err).dump();

  try {
    const Json* op = req->find("op");
    if (!op || !op->is_string())
      return error_response("request needs a string \"op\"").dump();
    const std::string& name = op->as_string();

    if (name == "ping") {
      Json j = Json::object();
      j.set("ok", Json::boolean(true));
      j.set("service", Json::string("wlansim-daemon"));
      j.set("pid", Json::number_u64(static_cast<std::uint64_t>(::getpid())));
      return j.dump();
    }
    if (name == "stats") {
      const SchedulerStats st = scheduler_.stats();
      Json j = Json::object();
      j.set("ok", Json::boolean(true));
      j.set("jobs", Json::number_u64(st.jobs));
      j.set("batches", Json::number_u64(st.batches));
      j.set("groups", Json::number_u64(st.groups));
      j.set("preempted", Json::number_u64(st.preempted));
      j.set("drops", Json::number_u64(st.drops));
      j.set("queries", Json::number_u64(st.dedup.queries));
      j.set("distinct", Json::number_u64(st.dedup.distinct));
      j.set("warm", Json::number_u64(st.dedup.warm));
      j.set("cold", Json::number_u64(st.dedup.cold));
      j.set("workers", Json::number_u64(st.workers));
      j.set("sharded_passes", Json::number_u64(st.sharded_passes));
      j.set("shard_reassigned", Json::number_u64(st.shard_reassigned));
      j.set("worker_respawns", Json::number_u64(st.worker_respawns));
      return j.dump();
    }
    if (name == "shutdown") {
      request_stop();
      Json j = Json::object();
      j.set("ok", Json::boolean(true));
      j.set("stopping", Json::boolean(true));
      return j.dump();
    }

    if (name == "drop") {
      const DropRequest drop = DropRequest::from_json(*req);
      const scenario::DropSummary summary =
          scheduler_.submit_drop(drop.cfg).get();
      return drop_response(summary).dump();
    }

    JobRequest job;
    std::vector<double> values;
    if (name == "sweep") {
      const SweepRequest sweep = SweepRequest::from_json(*req);
      values = sweep.values();
      job.configs = sweep.expand();
      job.rule = sweep.rule;
      job.axis = axis_from_param(sweep.param);
      job.bin_width_db = sweep.bin_width_db;
      job.use_store = sweep.use_store;
    } else if (name == "eval") {
      const EvalRequest eval = EvalRequest::from_json(*req);
      job.configs = eval.links;
      job.rule = eval.rule;
      job.axis = axis_from_param(eval.param);
      job.bin_width_db = eval.bin_width_db;
      job.use_store = eval.use_store;
      values.reserve(job.configs.size());
      for (const core::LinkConfig& cfg : job.configs) {
        values.push_back(job.axis == sim::SurrogateAxis::kSnrDb
                             ? cfg.snr_db.value_or(0.0)
                             : cfg.rx_power_dbm);
      }
    } else {
      return error_response("unknown op \"" + name + "\"").dump();
    }

    const JobResult result = scheduler_.submit(std::move(job)).get();
    return results_response(values, result.results, result.stats).dump();
  } catch (const PreemptedError& e) {
    return error_response(e.what(), /*resumable=*/true).dump();
  } catch (const std::exception& e) {
    return error_response(e.what()).dump();
  }
}

bool Server::serve_shard_line(int fd, const Json& req) {
  try {
    const ShardRequest shard = ShardRequest::from_json(req);
    ShardServeOptions so;
    so.checkpoint_dir = scheduler_.checkpoint_dir();
    so.checkpoint_every_waves = opts_.scheduler.checkpoint_every_waves;
    so.stop = &stop_;
    // false = preempted (our stop flag or the coordinator vanished); the
    // shard checkpoint is saved and the connection should close.
    return serve_shard(fd, shard, so);
  } catch (const std::exception& e) {
    const std::string response = error_response(e.what()).dump() + "\n";
    send_all(fd, response);
    return false;
  }
}

void Server::serve_connection(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // Shard jobs break the one-request-one-response shape: the worker
      // streams progress lines and a final done line straight to the fd
      // (service/shard.h). Everything else goes through handle_line.
      if (line.find("\"shard\"") != std::string::npos) {
        std::string parse_err;
        const std::optional<Json> req = Json::parse(line, &parse_err);
        const Json* op = req ? req->find("op") : nullptr;
        if (req && op && op->is_string() && op->as_string() == "shard") {
          if (!serve_shard_line(fd, *req)) break;
          continue;
        }
      }
      const std::string response = handle_line(line) + "\n";
      if (!send_all(fd, response)) break;
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed (or shutdown() during stop)
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  // The fd stays open until the owner joins this thread: closing here
  // would let the kernel recycle the descriptor number while teardown
  // still shutdown()s it.
  conn->done.store(true);
}

}  // namespace wlansim::service
