// The service scheduler: cross-request batching over the deduplicated
// sweep engine.
//
// Jobs accumulate in a queue while the engine thread is busy; each engine
// pass drains the WHOLE queue, groups the drained jobs by evaluation
// semantics (axis, bin width, stopping rule, store use), and runs each
// group as ONE core::sweep_ber_deduped call over the concatenation of the
// group's configs. That is the perf headline: overlapping keys across
// concurrent requests dedup into a single evaluation, cold keys share one
// pooled adaptive pass (cross-point work stealing + TX-scene memoization
// across the whole miss list), and warm keys are store lookups through a
// persistent in-memory curve cache. Because every deduped result is a pure
// function of (representative config, rule) — the PR-8 first-appearance-
// order contract — coalescing changes THROUGHPUT, never bits: each job's
// results are identical to running it alone.
//
// Cold passes run through service/checkpoint.h: progress persists at every
// wave boundary and a stop() preempts at the next boundary, failing the
// affected jobs with PreemptedError while keeping their progress on disk.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/surrogate.h"
#include "scenario/drop.h"
#include "service/shard.h"
#include "sim/ber_surrogate.h"

namespace wlansim::service {

/// One evaluation job: a list of links under one rule and dedup policy.
struct JobRequest {
  std::vector<core::LinkConfig> configs;
  sim::StoppingRule rule;
  sim::SurrogateAxis axis = sim::SurrogateAxis::kSnrDb;
  double bin_width_db = 0.0;
  bool use_store = true;
};

struct JobResult {
  /// results[i] answers configs[i]; bit-identical to
  /// core::sweep_ber_deduped(configs, ...) run alone.
  std::vector<core::BerResult> results;
  /// Dedup statistics of the POOLED pass that served this job (a job
  /// coalesced with others reports the whole group's distinct/warm/cold —
  /// that is the point), except `queries`, which is this job's own count.
  core::DedupStats stats;
};

struct SchedulerStats {
  std::uint64_t jobs = 0;      ///< submitted
  std::uint64_t batches = 0;   ///< engine passes (queue drains)
  std::uint64_t groups = 0;    ///< sweep_ber_deduped calls
  std::uint64_t preempted = 0; ///< jobs failed by shutdown preemption
  std::uint64_t drops = 0;     ///< drop jobs completed
  core::DedupStats dedup;      ///< accumulated over all groups and drops
  // Shard-coordinator view (zero when sharding is not configured):
  std::size_t workers = 0;           ///< workers configured
  std::uint64_t sharded_passes = 0;  ///< cold passes fanned out
  std::uint64_t shard_reassigned = 0;
  std::uint64_t worker_respawns = 0;
};

class Scheduler {
 public:
  struct Options {
    /// Calibration store directory (the content-addressed result store);
    /// empty = core::default_calibration_dir().
    std::filesystem::path store_dir;
    /// Checkpoint directory; empty = store_dir.
    std::filesystem::path checkpoint_dir;
    /// Worker threads for MC passes (run_ber_parallel semantics).
    std::size_t threads = 0;
    /// Save a checkpoint every Nth wave boundary (1 = every wave).
    std::size_t checkpoint_every_waves = 1;
    /// Start with the engine paused: submissions queue but do not run
    /// until resume() — deterministic coalescing for tests and benches.
    bool start_paused = false;
    /// Local worker processes to spawn for sharded cold passes
    /// (service/shard.h). 0 (+ no worker_sockets) = single-process cold
    /// passes, exactly the pre-sharding behavior.
    std::size_t workers = 0;
    /// Sockets of already-running worker daemons to attach.
    std::vector<std::filesystem::path> worker_sockets;
    /// Worker binary for spawned workers; empty = auto-resolve
    /// (ShardCoordinator::Options::worker_binary).
    std::filesystem::path worker_binary;
  };

  explicit Scheduler(Options opts);
  ~Scheduler();  // stop()

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueue a job; the future resolves when its group's pass completes.
  /// Throws std::runtime_error after stop(). The future carries
  /// PreemptedError when a shutdown preempted the job (its cold-pass
  /// progress is checkpointed; resubmitting after restart resumes).
  std::future<JobResult> submit(JobRequest req);

  /// Enqueue a full drop (scenario::run_drop) on the engine thread. The
  /// drop's threads / store_dir are overridden with the daemon's own, and
  /// its pooled cold passes route through the same checkpointed (and
  /// sharded, when workers are configured) executor as sweep jobs.
  std::future<scenario::DropSummary> submit_drop(scenario::DropConfig cfg);

  /// Release a start_paused engine.
  void resume();

  /// Graceful stop: preempt any in-flight cold pass at its next wave
  /// boundary (checkpointing it), fail queued jobs with PreemptedError,
  /// and join the engine thread. Idempotent.
  void stop();

  SchedulerStats stats() const;

  const std::filesystem::path& store_dir() const { return store_dir_; }
  const std::filesystem::path& checkpoint_dir() const {
    return checkpoint_dir_;
  }
  /// The shard coordinator, or nullptr when sharding is not configured
  /// (tests SIGKILL its worker_pids()).
  ShardCoordinator* coordinator() { return coordinator_.get(); }

 private:
  struct Pending {
    JobRequest req;
    std::promise<JobResult> promise;
  };
  struct PendingDrop {
    scenario::DropConfig cfg;
    std::promise<scenario::DropSummary> promise;
  };

  void engine_loop();
  void run_batch(std::vector<Pending>& batch);
  void run_drops(std::vector<PendingDrop>& drops);
  core::ColdPassFn cold_pass_hook();

  Options opts_;
  std::filesystem::path store_dir_;
  std::filesystem::path checkpoint_dir_;
  sim::BerSurrogate cache_;  ///< persistent in-memory store view (engine only)
  std::unique_ptr<ShardCoordinator> coordinator_;  ///< null = unsharded

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Pending> pending_;
  std::vector<PendingDrop> pending_drops_;
  bool paused_ = false;
  bool stopping_ = false;
  SchedulerStats stats_;
  std::atomic<bool> stop_flag_{false};  ///< read by the cold-pass hook
  std::thread engine_;
};

}  // namespace wlansim::service
