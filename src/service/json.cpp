#include "service/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace wlansim::service {

namespace {

/// Shortest decimal that round-trips to the identical double — the same
/// scheme as the scenario trace writer, so every layer of the toolchain
/// prints 0.5 as "0.5" and a parsed-back value is bit-identical.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  Parser(std::string_view text, std::string* err) : text_(text), err_(err) {}

  std::optional<Json> run() {
    std::optional<Json> v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& what) {
    if (err_ && err_->empty())
      *err_ = what + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::optional<Json> parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') {
      std::optional<std::string> s = parse_string();
      if (!s) return std::nullopt;
      return Json::string(std::move(*s));
    }
    if (c == 't') {
      if (literal("true")) return Json::boolean(true);
      fail("invalid literal");
      return std::nullopt;
    }
    if (c == 'f') {
      if (literal("false")) return Json::boolean(false);
      fail("invalid literal");
      return std::nullopt;
    }
    if (c == 'n') {
      if (literal("null")) return Json();
      fail("invalid literal");
      return std::nullopt;
    }
    return parse_number();
  }

  std::optional<Json> parse_object(int depth) {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return std::nullopt;
      }
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<Json> v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      obj.set(std::move(*key), std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array(int depth) {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    for (;;) {
      std::optional<Json> v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  void encode_utf8(unsigned long cp, std::string& out) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::optional<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else {
        fail("invalid \\u escape");
        return std::nullopt;
      }
    }
    pos_ += 4;
    return v;
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("truncated escape");
        return std::nullopt;
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          std::optional<unsigned> hi = parse_hex4();
          if (!hi) return std::nullopt;
          unsigned long cp = *hi;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair.
            if (!(consume('\\') && consume('u'))) {
              fail("unpaired surrogate");
              return std::nullopt;
            }
            std::optional<unsigned> lo = parse_hex4();
            if (!lo) return std::nullopt;
            if (*lo < 0xDC00 || *lo > 0xDFFF) {
              fail("invalid low surrogate");
              return std::nullopt;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (*lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired surrogate");
            return std::nullopt;
          }
          encode_utf8(cp, out);
          break;
        }
        default:
          fail("invalid escape");
          return std::nullopt;
      }
    }
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      fail("invalid number");
      return std::nullopt;
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
        return std::nullopt;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("invalid number");
        return std::nullopt;
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral && token[0] != '-') {
      // Keep the exact-integer channel when the token fits in a u64.
      errno = 0;
      char* end = nullptr;
      const unsigned long long u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size())
        return Json::number_u64(static_cast<std::uint64_t>(u));
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("invalid number");
      return std::nullopt;
    }
    return Json::number(d);
  }

  std::string_view text_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  if (std::isfinite(v) && v >= 0.0 && v <= 9007199254740992.0 /* 2^53 */ &&
      v == std::floor(v) && !std::signbit(v)) {  // -0.0 must keep its sign
    j.u64_ = static_cast<std::uint64_t>(v);
    j.has_u64_ = true;
  }
  return j;
}

Json Json::number_u64(std::uint64_t v) {
  Json j;
  j.type_ = Type::kNumber;
  j.u64_ = v;
  j.has_u64_ = true;
  j.num_ = static_cast<double>(v);
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(s);
  return j;
}

Json Json::array(Array items) {
  Json j;
  j.type_ = Type::kArray;
  j.arr_ = std::move(items);
  return j;
}

Json Json::object(Object members) {
  Json j;
  j.type_ = Type::kObject;
  j.obj_ = std::move(members);
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JSON: not a number");
  return num_;
}

std::uint64_t Json::as_u64() const {
  if (type_ != Type::kNumber) throw std::runtime_error("JSON: not a number");
  if (has_u64_) return u64_;
  if (num_ >= 0.0 && num_ <= 9007199254740992.0 && num_ == std::floor(num_))
    return static_cast<std::uint64_t>(num_);
  throw std::runtime_error("JSON: number is not an exact unsigned integer");
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("JSON: not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("JSON: not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("JSON: not an object");
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

void Json::set(std::string key, Json v) {
  if (type_ != Type::kObject) return;
  for (auto& [k, existing] : obj_) {
    if (k == key) {  // replace in place, keep the member's slot
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
}

void Json::push_back(Json v) {
  if (type_ == Type::kArray) arr_.push_back(std::move(v));
}

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      if (has_u64_) {
        out = std::to_string(u64_);
      } else if (std::isfinite(num_)) {
        out = fmt_double(num_);
      } else {
        // JSON has no inf/nan tokens; the protocol layer wraps these
        // (service/protocol.cpp number_or_special) before they get here.
        out = "null";
      }
      break;
    case Type::kString:
      dump_string(str_, out);
      break;
    case Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out.push_back(',');
        first = false;
        out += v.dump();
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(k, out);
        out.push_back(':');
        out += v.dump();
      }
      out.push_back('}');
      break;
    }
  }
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* err) {
  if (err) err->clear();
  return Parser(text, err).run();
}

}  // namespace wlansim::service
