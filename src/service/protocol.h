// Wire protocol of the wlansim service: newline-delimited JSON request/
// response pairs over a Unix-domain stream socket (service/server.h).
//
// Requests ("op" selects the handler):
//   {"op":"ping"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//   {"op":"sweep","param":"snr","from":5,"to":25,"step":2,
//    "link":{...},"rule":{...},"bin_width_db":0,"use_store":true}
//   {"op":"eval","links":[{...},...],"param":"snr","rule":{...},
//    "bin_width_db":0.5,"use_store":true}
// Responses always carry "ok"; failures add "error" (and "resumable":true
// when the job was preempted by a daemon shutdown and a checkpoint holds
// its progress).
//
// Determinism across the wire: every double serializes as the shortest
// decimal that round-trips to the identical bit pattern and every counter
// as an exact integer (service/json.h), so a client reconstructing
// BerResults gets byte-identical statistics to an in-process caller. The
// non-finite CI sentinel (+inf before the first bit error) travels as the
// string "inf" because JSON has no infinity token.
#pragma once

#include <string>
#include <vector>

#include "core/surrogate.h"
#include "service/json.h"

namespace wlansim::service {

// --- LinkConfig <-> JSON ----------------------------------------------------
// Serializes the CLI-exposed configuration surface (the same fields
// `wlansim sweep` accepts): rate_mbps, psdu_bytes, rx_power_dbm, snr_db
// (absent = no excess noise), rf_engine, lna_p1db_in_dbm,
// bb_bandwidth_factor, sco_ppm, the optional adjacent-channel interferer,
// and the seed. Unlisted LinkConfig fields keep core::default_link_config()
// values on both sides, so client and daemon agree on the full config.
Json link_to_json(const core::LinkConfig& cfg);
core::LinkConfig link_from_json(const Json& j);  // throws on malformed input

// --- StoppingRule <-> JSON --------------------------------------------------
Json rule_to_json(const sim::StoppingRule& rule);
sim::StoppingRule rule_from_json(const Json& j);

// --- BerResult <-> JSON -----------------------------------------------------
// Full-field round trip (counters exact, doubles bit-exact, "inf"/"nan"
// spelled as strings); wall_seconds rides along untouched — it is the one
// deliberately non-deterministic field.
Json result_to_json(const core::BerResult& r);
core::BerResult result_from_json(const Json& j);

/// The sweep value expansion `wlansim sweep` uses — shared here so client,
/// daemon, and CLI produce bit-identical axis columns for the same
/// (from, to, step).
std::vector<double> sweep_values(double from, double to, double step);

/// Map a sweep parameter name to the surrogate axis ("snr" or "power";
/// other CLI sweep parameters change the front-end, i.e. the calibration
/// key, and are not serviceable). Throws std::invalid_argument otherwise.
sim::SurrogateAxis axis_from_param(const std::string& param);

// --- Job requests -----------------------------------------------------------

/// "sweep": one base link swept along `param` over [from, to] in `step`s.
struct SweepRequest {
  std::string param = "snr";
  double from = 5.0;
  double to = 25.0;
  double step = 2.0;
  core::LinkConfig base;
  sim::StoppingRule rule;
  /// Axis dedup bin width [dB]; 0 = exact values (bit-parity with
  /// `wlansim sweep --surrogate`).
  double bin_width_db = 0.0;
  bool use_store = true;

  std::vector<double> values() const { return sweep_values(from, to, step); }
  std::vector<core::LinkConfig> expand() const;

  Json to_json() const;
  static SweepRequest from_json(const Json& j);
};

/// "eval": an explicit list of links (the drop-shaped job — stations whose
/// geometry the client already reduced to per-link SNRs), deduplicated and
/// evaluated under one rule.
struct EvalRequest {
  std::string param = "snr";  ///< dedup axis
  std::vector<core::LinkConfig> links;
  sim::StoppingRule rule;
  double bin_width_db = 0.5;
  bool use_store = true;

  Json to_json() const;
  static EvalRequest from_json(const Json& j);
};

// --- Responses --------------------------------------------------------------

Json error_response(const std::string& message, bool resumable = false);

Json results_response(const std::vector<double>& values,
                      const std::vector<core::BerResult>& results,
                      const core::DedupStats& stats);

/// Parsed client-side view of a results_response.
struct ResultsReply {
  std::vector<double> values;
  std::vector<core::BerResult> results;
  core::DedupStats stats;
};
/// Throws std::runtime_error carrying the server's "error" text when the
/// response is ok:false.
ResultsReply results_reply_from_json(const Json& j);

}  // namespace wlansim::service
