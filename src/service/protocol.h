// Wire protocol of the wlansim service: newline-delimited JSON request/
// response pairs over a Unix-domain stream socket (service/server.h).
//
// Requests ("op" selects the handler):
//   {"op":"ping"}
//   {"op":"stats"}
//   {"op":"shutdown"}
//   {"op":"sweep","param":"snr","from":5,"to":25,"step":2,
//    "link":{...},"rule":{...},"bin_width_db":0,"use_store":true}
//   {"op":"eval","links":[{...},...],"param":"snr","rule":{...},
//    "bin_width_db":0.5,"use_store":true}
// Responses always carry "ok"; failures add "error" (and "resumable":true
// when the job was preempted by a daemon shutdown and a checkpoint holds
// its progress).
//
// Determinism across the wire: every double serializes as the shortest
// decimal that round-trips to the identical bit pattern and every counter
// as an exact integer (service/json.h), so a client reconstructing
// BerResults gets byte-identical statistics to an in-process caller. The
// non-finite CI sentinel (+inf before the first bit error) travels as the
// string "inf" because JSON has no infinity token.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/surrogate.h"
#include "scenario/drop.h"
#include "service/json.h"

namespace wlansim::service {

// --- LinkConfig <-> JSON ----------------------------------------------------
// Serializes the CLI-exposed configuration surface (the same fields
// `wlansim sweep` accepts): rate_mbps, psdu_bytes, rx_power_dbm, snr_db
// (absent = no excess noise), rf_engine, lna_p1db_in_dbm,
// bb_bandwidth_factor, sco_ppm, the optional adjacent-channel interferer,
// and the seed. Unlisted LinkConfig fields keep core::default_link_config()
// values on both sides, so client and daemon agree on the full config.
Json link_to_json(const core::LinkConfig& cfg);
core::LinkConfig link_from_json(const Json& j);  // throws on malformed input

// --- StoppingRule <-> JSON --------------------------------------------------
Json rule_to_json(const sim::StoppingRule& rule);
sim::StoppingRule rule_from_json(const Json& j);

// --- BerResult <-> JSON -----------------------------------------------------
// Full-field round trip (counters exact, doubles bit-exact, "inf"/"nan"
// spelled as strings); wall_seconds rides along untouched — it is the one
// deliberately non-deterministic field.
Json result_to_json(const core::BerResult& r);
core::BerResult result_from_json(const Json& j);

/// The sweep value expansion `wlansim sweep` uses — shared here so client,
/// daemon, and CLI produce bit-identical axis columns for the same
/// (from, to, step).
std::vector<double> sweep_values(double from, double to, double step);

/// Map a sweep parameter name to the surrogate axis ("snr" or "power";
/// other CLI sweep parameters change the front-end, i.e. the calibration
/// key, and are not serviceable). Throws std::invalid_argument otherwise.
sim::SurrogateAxis axis_from_param(const std::string& param);

// --- Job requests -----------------------------------------------------------

/// "sweep": one base link swept along `param` over [from, to] in `step`s.
struct SweepRequest {
  std::string param = "snr";
  double from = 5.0;
  double to = 25.0;
  double step = 2.0;
  core::LinkConfig base;
  sim::StoppingRule rule;
  /// Axis dedup bin width [dB]; 0 = exact values (bit-parity with
  /// `wlansim sweep --surrogate`).
  double bin_width_db = 0.0;
  bool use_store = true;

  std::vector<double> values() const { return sweep_values(from, to, step); }
  std::vector<core::LinkConfig> expand() const;

  Json to_json() const;
  static SweepRequest from_json(const Json& j);
};

/// "eval": an explicit list of links (the drop-shaped job — stations whose
/// geometry the client already reduced to per-link SNRs), deduplicated and
/// evaluated under one rule.
struct EvalRequest {
  std::string param = "snr";  ///< dedup axis
  std::vector<core::LinkConfig> links;
  sim::StoppingRule rule;
  double bin_width_db = 0.5;
  bool use_store = true;

  Json to_json() const;
  static EvalRequest from_json(const Json& j);
};

/// "drop": a full network-scale drop (scenario::run_drop) executed inside
/// the daemon, so its pooled cold passes ride the same checkpointed (and
/// sharded) executor as sweep jobs and its backfill lands in the daemon's
/// store. Serializes the CLI-exposed DropConfig surface; `threads` and
/// `store_dir` stay daemon-owned (they are resources of the serving
/// process, not of the question being asked).
struct DropRequest {
  scenario::DropConfig cfg;

  Json to_json() const;
  static DropRequest from_json(const Json& j);
};

// --- SweepPointProgress <-> JSON --------------------------------------------
// Exact round trip: counters via the u64 channel, evm_sum via the
// shortest-round-trip double codec — a progress vector shipped to a worker
// and back resumes bit-identically to one kept in memory.
Json progress_to_json(const core::SweepPointProgress& p);
core::SweepPointProgress progress_from_json(const Json& j);

Json progress_array_to_json(std::span<const core::SweepPointProgress> ps);
std::vector<core::SweepPointProgress> progress_array_from_json(const Json& j);

// --- Shard job (coordinator -> worker) --------------------------------------

/// "shard": one shard of a pooled cold pass — an explicit config list run
/// as a checkpointed sweep_ber_adaptive pass by a worker daemon
/// (service/shard.h). Unlike every other op, the worker STREAMS responses:
/// zero or more progress lines (one per report_every_waves wave
/// boundaries), then exactly one done line (or an error line). The
/// coordinator uses the progress lines to reseed the shard on another
/// worker after a loss, so a worker SIGKILL costs at most
/// report_every_waves quanta of redone work.
struct ShardRequest {
  std::vector<core::LinkConfig> links;
  sim::StoppingRule rule;
  std::size_t threads = 0;
  /// Stream a progress line every this many wave boundaries (>= 1).
  std::size_t report_every_waves = 1;
  /// Resume seed: empty (cold) or one entry per link — the coordinator's
  /// latest view of this shard (from a lost worker's progress reports or
  /// the merged whole-pass checkpoint).
  std::vector<core::SweepPointProgress> resume;

  Json to_json() const;
  static ShardRequest from_json(const Json& j);
};

/// One streamed worker line: {"ok":true,"shard":"progress",...} while
/// running, {"ok":true,"shard":"done",...} on completion.
Json shard_progress_response(std::span<const core::SweepPointProgress> ps);
Json shard_done_response(const std::vector<core::BerResult>& results,
                         std::span<const core::SweepPointProgress> ps,
                         std::uint64_t resumed_packets);

/// Parsed coordinator-side view of one worker line.
struct ShardReply {
  bool done = false;  ///< false: progress line; true: final results line
  std::vector<core::SweepPointProgress> progress;
  std::vector<core::BerResult> results;  ///< filled when done
  /// Sum of the resume seed's packet counters the worker started from —
  /// 0 means the worker ran the shard cold (tests use this to assert a
  /// corrupt checkpoint forced a clean cold re-run).
  std::uint64_t resumed_packets = 0;
};
/// Throws std::runtime_error carrying the worker's "error" text on an
/// ok:false line.
ShardReply shard_reply_from_json(const Json& j);

// --- Responses --------------------------------------------------------------

Json error_response(const std::string& message, bool resumable = false);

Json results_response(const std::vector<double>& values,
                      const std::vector<core::BerResult>& results,
                      const core::DedupStats& stats);

/// Parsed client-side view of a results_response.
struct ResultsReply {
  std::vector<double> values;
  std::vector<core::BerResult> results;
  core::DedupStats stats;
};
/// Throws std::runtime_error carrying the server's "error" text when the
/// response is ok:false.
ResultsReply results_reply_from_json(const Json& j);

/// Drop response: the full per-step summary, doubles bit-exact, so the
/// client renders scenario::drop_summary_table byte-identically to the
/// local CLI (wall_seconds excepted in spirit — it rides along verbatim
/// and simply measures the daemon's clock, not the client's).
Json drop_response(const scenario::DropSummary& summary);
/// Throws std::runtime_error carrying the server's "error" text on
/// ok:false.
scenario::DropSummary drop_summary_from_json(const Json& j);

}  // namespace wlansim::service
