#include "service/checkpoint.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/fingerprint.h"

namespace wlansim::service {

namespace {

constexpr std::string_view kMagic = "wlansim-ckpt v1";

/// C99 hexfloat: bit-exact double round trips, locale-independent.
void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out += buf;
}

bool parse_double(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size();
}

bool parse_u64(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

std::string hex_encode(std::string_view bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xF]);
  }
  return out;
}

std::optional<std::string> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  std::string out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string cold_pass_key(std::span<const core::LinkConfig> configs,
                          const sim::StoppingRule& rule) {
  std::string key(kMagic);
  key += "|rule ";
  append_double(key, rule.target_rel_ci);
  key += ' ';
  append_double(key, rule.confidence_z);
  key += ' ';
  key += std::to_string(rule.min_errors);
  key += ' ';
  key += std::to_string(rule.min_packets);
  key += ' ';
  key += std::to_string(rule.max_packets);
  for (const core::LinkConfig& cfg : configs) {
    const std::string fp = core::link_fingerprint(cfg);
    if (fp.empty()) return {};
    key += "|cfg ";
    key += fp;
  }
  return key;
}

std::filesystem::path checkpoint_path(const std::filesystem::path& dir,
                                      std::string_view key) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return dir / (std::string(buf) + ".ckpt");
}

std::string serialize_checkpoint(
    std::string_view key, std::span<const core::SweepPointProgress> progress) {
  std::string out(kMagic);
  out += '\n';
  out += "pid " + std::to_string(::getpid()) + '\n';
  out += "key " + hex_encode(key) + '\n';
  out += "points " + std::to_string(progress.size()) + '\n';
  for (const core::SweepPointProgress& p : progress) {
    out += std::to_string(p.packets);
    out += ' ';
    out += std::to_string(p.packets_lost);
    out += ' ';
    out += std::to_string(p.packet_errors);
    out += ' ';
    out += std::to_string(p.bits);
    out += ' ';
    out += std::to_string(p.bit_errors);
    out += ' ';
    append_double(out, p.evm_sum);
    out += ' ';
    out += std::to_string(p.evm_packets);
    out += ' ';
    out += p.stopped ? '1' : '0';
    out += ' ';
    out += p.converged ? '1' : '0';
    out += '\n';
  }
  out += "end\n";  // truncation sentinel: a partial write never parses
  return out;
}

std::optional<std::vector<core::SweepPointProgress>> parse_checkpoint(
    std::string_view text, std::string_view expected_key, long* writer_pid) {
  std::istringstream in{std::string(text)};
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;

  if (!std::getline(in, line) || line.rfind("pid ", 0) != 0)
    return std::nullopt;
  std::uint64_t pid = 0;
  if (!parse_u64(line.substr(4), pid)) return std::nullopt;
  if (writer_pid) *writer_pid = static_cast<long>(pid);

  if (!std::getline(in, line) || line.rfind("key ", 0) != 0)
    return std::nullopt;
  const std::optional<std::string> key = hex_decode(line.substr(4));
  if (!key || *key != expected_key) return std::nullopt;

  if (!std::getline(in, line) || line.rfind("points ", 0) != 0)
    return std::nullopt;
  std::uint64_t n = 0;
  if (!parse_u64(line.substr(7), n) || n > (1ull << 32)) return std::nullopt;

  std::vector<core::SweepPointProgress> progress;
  progress.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) return std::nullopt;
    std::istringstream ls(line);
    std::string f[9];
    for (auto& tok : f)
      if (!(ls >> tok)) return std::nullopt;
    std::string extra;
    if (ls >> extra) return std::nullopt;
    core::SweepPointProgress p;
    std::uint64_t stopped = 0, converged = 0;
    if (!parse_u64(f[0], p.packets) || !parse_u64(f[1], p.packets_lost) ||
        !parse_u64(f[2], p.packet_errors) || !parse_u64(f[3], p.bits) ||
        !parse_u64(f[4], p.bit_errors) || !parse_double(f[5], p.evm_sum) ||
        !parse_u64(f[6], p.evm_packets) || !parse_u64(f[7], stopped) ||
        stopped > 1 || !parse_u64(f[8], converged) || converged > 1) {
      return std::nullopt;
    }
    p.stopped = stopped == 1;
    p.converged = converged == 1;
    progress.push_back(p);
  }
  if (!std::getline(in, line) || line != "end") return std::nullopt;
  return progress;
}

bool save_checkpoint(const std::filesystem::path& dir, std::string_view key,
                     std::span<const core::SweepPointProgress> progress) {
  if (key.empty()) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  // Same discipline as the calibration store: per-writer temp name, rename
  // publishes whole files only.
  static std::atomic<unsigned> counter{0};
  const std::filesystem::path final_path = checkpoint_path(dir, key);
  std::filesystem::path tmp = final_path;
  tmp += ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << serialize_checkpoint(key, progress);
    out.flush();
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<std::vector<core::SweepPointProgress>> load_checkpoint(
    const std::filesystem::path& dir, std::string_view key,
    std::size_t expect_points, long* writer_pid) {
  if (key.empty()) return std::nullopt;
  std::ifstream in(checkpoint_path(dir, key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return std::nullopt;
  std::optional<std::vector<core::SweepPointProgress>> progress =
      parse_checkpoint(buf.str(), key, writer_pid);
  if (progress && progress->size() != expect_points) return std::nullopt;
  return progress;
}

void remove_checkpoint(const std::filesystem::path& dir,
                       std::string_view key) {
  if (key.empty()) return;
  std::error_code ec;
  std::filesystem::remove(checkpoint_path(dir, key), ec);
}

std::vector<core::BerResult> run_cold_pass_checkpointed(
    const std::filesystem::path& dir,
    std::span<const core::LinkConfig> configs, const sim::StoppingRule& rule,
    const core::SweepOptions& opts, const std::atomic<bool>* stop,
    std::size_t checkpoint_every_waves) {
  const std::string key = cold_pass_key(configs, rule);
  if (checkpoint_every_waves == 0) checkpoint_every_waves = 1;

  core::AdaptiveResume resume;
  if (!key.empty()) {
    if (auto loaded = load_checkpoint(dir, key, configs.size()))
      resume.progress = std::move(*loaded);
  }

  std::size_t wave = 0;
  resume.on_wave = [&](std::span<const core::SweepPointProgress> progress) {
    const bool stopping = stop != nullptr && stop->load();
    if (!key.empty() &&
        (stopping || ++wave % checkpoint_every_waves == 0)) {
      save_checkpoint(dir, key, progress);
    }
    return !stopping;
  };

  std::vector<core::BerResult> results;
  try {
    results = core::sweep_ber_adaptive_resumable(configs, rule, opts, &resume);
  } catch (const std::invalid_argument&) {
    // A checkpoint that passed parsing but fails the engine's resume
    // validation (e.g. written under a colliding key with different
    // semantics) is treated like any other corrupt file: cold start.
    resume.progress.clear();
    resume.preempted = false;
    results = core::sweep_ber_adaptive_resumable(configs, rule, opts, &resume);
  }

  if (resume.preempted) {
    if (!key.empty()) save_checkpoint(dir, key, resume.progress);
    throw PreemptedError(
        "cold pass preempted by shutdown; progress checkpointed — resubmit "
        "the job to resume");
  }
  if (!key.empty()) remove_checkpoint(dir, key);
  return results;
}

}  // namespace wlansim::service
