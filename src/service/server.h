// Unix-domain socket front of the wlansim service.
//
// Accepts connections on a stream socket and speaks the newline-delimited
// JSON protocol (service/protocol.h): each request line produces exactly
// one response line. Every connection gets its own thread; a thread blocks
// in Scheduler::submit(...).get() while its job runs, which is exactly the
// mechanism that lets concurrent requests pile up in the scheduler queue
// and coalesce into pooled passes. The accept loop polls with a short
// timeout so a stop flag (SIGTERM in the daemon) is honored promptly;
// shutdown preempts in-flight cold passes at the next wave boundary
// (checkpointing them), drains the thread pool gracefully, and unlinks the
// socket.
#pragma once

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/scheduler.h"

namespace wlansim::service {

class Server {
 public:
  struct Options {
    /// Socket path; must fit a sockaddr_un (~100 bytes). An existing file
    /// at the path is unlinked before binding — the daemon owns its path.
    std::filesystem::path socket_path;
    Scheduler::Options scheduler;
  };

  /// Binds and listens (throws std::runtime_error on socket errors);
  /// serving starts with run().
  explicit Server(Options opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Accept-and-serve loop. Returns after request_stop() is called, an
  /// "op":"shutdown" request arrives, or `external_stop` (polled ~5x/s,
  /// e.g. a signal handler's flag) becomes true — at which point all
  /// connections are shut down, their threads joined, and the scheduler
  /// stopped (preempting + checkpointing any in-flight cold pass).
  void run(const std::atomic<bool>* external_stop = nullptr);

  /// Ask a running run() to wind down (safe from any thread).
  void request_stop();

  const std::filesystem::path& socket_path() const {
    return opts_.socket_path;
  }
  Scheduler& scheduler() { return scheduler_; }

  /// One request line -> one response line (exposed for protocol-level
  /// tests; run() uses it per connection).
  std::string handle_line(const std::string& line);

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void serve_connection(Connection* conn);
  /// Run an "op":"shard" request, streaming its responses to `fd`; true
  /// when the connection may keep serving (the done line was sent).
  bool serve_shard_line(int fd, const Json& req);
  /// Join and close connections whose threads have finished (the fd is
  /// closed only here and at teardown, so a descriptor is never recycled
  /// while another thread still holds its number).
  void reap_finished();
  void teardown_connections();

  Options opts_;
  Scheduler scheduler_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace wlansim::service
