#include "service/protocol.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/experiments.h"
#include "phy80211a/params.h"

namespace wlansim::service {

namespace {

/// Finite doubles travel as numbers; the CI sentinel values as strings
/// (JSON has no inf/nan tokens).
Json number_or_special(double v) {
  if (std::isfinite(v)) return Json::number(v);
  if (std::isnan(v)) return Json::string("nan");
  return Json::string(v > 0 ? "inf" : "-inf");
}

double double_or_special(const Json& j, const char* what) {
  if (j.is_number()) return j.as_double();
  if (j.is_string()) {
    const std::string& s = j.as_string();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  throw std::runtime_error(std::string("protocol: bad numeric field ") + what);
}

const Json& require(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (!v)
    throw std::runtime_error(std::string("protocol: missing field \"") + key +
                             "\"");
  return *v;
}

double get_double(const Json& j, const char* key, double fallback) {
  const Json* v = j.find(key);
  return v ? v->as_double() : fallback;
}

std::uint64_t get_u64(const Json& j, const char* key, std::uint64_t fallback) {
  const Json* v = j.find(key);
  return v ? v->as_u64() : fallback;
}

bool get_bool(const Json& j, const char* key, bool fallback) {
  const Json* v = j.find(key);
  return v ? v->as_bool() : fallback;
}

long rate_to_mbps(phy::Rate r) {
  return static_cast<long>(phy::rate_params(r).rate_mbps);
}

phy::Rate rate_from_mbps_value(std::uint64_t mbps) {
  switch (mbps) {
    case 6: return phy::Rate::kMbps6;
    case 9: return phy::Rate::kMbps9;
    case 12: return phy::Rate::kMbps12;
    case 18: return phy::Rate::kMbps18;
    case 24: return phy::Rate::kMbps24;
    case 36: return phy::Rate::kMbps36;
    case 48: return phy::Rate::kMbps48;
    case 54: return phy::Rate::kMbps54;
    default:
      throw std::runtime_error("protocol: rate_mbps must be one of "
                               "6 9 12 18 24 36 48 54");
  }
}

}  // namespace

Json link_to_json(const core::LinkConfig& cfg) {
  Json j = Json::object();
  j.set("rate_mbps", Json::number_u64(static_cast<std::uint64_t>(
                         rate_to_mbps(cfg.rate))));
  j.set("psdu_bytes", Json::number_u64(cfg.psdu_bytes));
  j.set("rx_power_dbm", Json::number(cfg.rx_power_dbm));
  if (cfg.snr_db.has_value()) j.set("snr_db", Json::number(*cfg.snr_db));
  const char* rf = "system";
  switch (cfg.rf_engine) {
    case core::RfEngine::kNone: rf = "none"; break;
    case core::RfEngine::kSystemLevel: rf = "system"; break;
    case core::RfEngine::kCosim: rf = "cosim"; break;
    case core::RfEngine::kCustom:
      throw std::invalid_argument(
          "link_to_json: a custom RF block cannot be serialized");
  }
  j.set("rf_engine", Json::string(rf));
  j.set("lna_p1db_in_dbm", Json::number(cfg.rf.lna_p1db_in_dbm));
  j.set("bb_bandwidth_factor", Json::number(cfg.rf.bb_bandwidth_factor));
  j.set("sco_ppm", Json::number(cfg.sco_ppm));
  if (cfg.interferer.has_value()) {
    Json adj = Json::object();
    adj.set("offset_hz", Json::number(cfg.interferer->offset_hz));
    adj.set("level_db", Json::number(cfg.interferer->level_db));
    j.set("adjacent", std::move(adj));
  }
  j.set("seed", Json::number_u64(cfg.seed));
  return j;
}

core::LinkConfig link_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: \"link\" must be an object");
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate_from_mbps_value(get_u64(j, "rate_mbps", 24));
  cfg.psdu_bytes =
      static_cast<std::size_t>(get_u64(j, "psdu_bytes", cfg.psdu_bytes));
  cfg.rx_power_dbm = get_double(j, "rx_power_dbm", cfg.rx_power_dbm);
  if (const Json* snr = j.find("snr_db")) {
    cfg.snr_db = snr->as_double();
  } else {
    cfg.snr_db.reset();
  }
  const Json* rf = j.find("rf_engine");
  const std::string engine = rf ? rf->as_string() : "system";
  if (engine == "none") {
    cfg.rf_engine = core::RfEngine::kNone;
  } else if (engine == "system") {
    cfg.rf_engine = core::RfEngine::kSystemLevel;
  } else if (engine == "cosim") {
    cfg.rf_engine = core::RfEngine::kCosim;
  } else {
    throw std::runtime_error("protocol: rf_engine must be none|system|cosim");
  }
  cfg.rf.lna_p1db_in_dbm =
      get_double(j, "lna_p1db_in_dbm", cfg.rf.lna_p1db_in_dbm);
  cfg.rf.bb_bandwidth_factor =
      get_double(j, "bb_bandwidth_factor", cfg.rf.bb_bandwidth_factor);
  cfg.sco_ppm = get_double(j, "sco_ppm", cfg.sco_ppm);
  if (const Json* adj = j.find("adjacent")) {
    channel::InterfererConfig ic;
    ic.offset_hz = get_double(*adj, "offset_hz", ic.offset_hz);
    ic.level_db = get_double(*adj, "level_db", ic.level_db);
    cfg.interferer = ic;
  }
  cfg.seed = get_u64(j, "seed", cfg.seed);
  return cfg;
}

Json rule_to_json(const sim::StoppingRule& rule) {
  Json j = Json::object();
  j.set("target_rel_ci", Json::number(rule.target_rel_ci));
  j.set("confidence_z", Json::number(rule.confidence_z));
  j.set("min_errors", Json::number_u64(rule.min_errors));
  j.set("min_packets", Json::number_u64(rule.min_packets));
  j.set("max_packets", Json::number_u64(rule.max_packets));
  return j;
}

sim::StoppingRule rule_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: \"rule\" must be an object");
  sim::StoppingRule rule;
  rule.target_rel_ci = get_double(j, "target_rel_ci", rule.target_rel_ci);
  rule.confidence_z = get_double(j, "confidence_z", rule.confidence_z);
  rule.min_errors =
      static_cast<std::size_t>(get_u64(j, "min_errors", rule.min_errors));
  rule.min_packets =
      static_cast<std::size_t>(get_u64(j, "min_packets", rule.min_packets));
  rule.max_packets =
      static_cast<std::size_t>(get_u64(j, "max_packets", rule.max_packets));
  return rule;
}

Json result_to_json(const core::BerResult& r) {
  Json j = Json::object();
  j.set("packets", Json::number_u64(r.packets));
  j.set("packets_lost", Json::number_u64(r.packets_lost));
  j.set("packet_errors", Json::number_u64(r.packet_errors));
  j.set("bits", Json::number_u64(r.bits));
  j.set("bit_errors", Json::number_u64(r.bit_errors));
  j.set("evm_rms_avg", Json::number(r.evm_rms_avg));
  j.set("ber_ci_rel", number_or_special(r.ber_ci_rel));
  j.set("wall_seconds", Json::number(r.wall_seconds));
  j.set("converged", Json::boolean(r.converged));
  j.set("model_ber", Json::number(r.model_ber));
  j.set("model_per", Json::number(r.model_per));
  j.set("from_surrogate", Json::boolean(r.from_surrogate));
  return j;
}

core::BerResult result_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: result must be an object");
  core::BerResult r;
  r.packets = static_cast<std::size_t>(require(j, "packets").as_u64());
  r.packets_lost =
      static_cast<std::size_t>(require(j, "packets_lost").as_u64());
  r.packet_errors =
      static_cast<std::size_t>(require(j, "packet_errors").as_u64());
  r.bits = static_cast<std::size_t>(require(j, "bits").as_u64());
  r.bit_errors = static_cast<std::size_t>(require(j, "bit_errors").as_u64());
  r.evm_rms_avg = require(j, "evm_rms_avg").as_double();
  r.ber_ci_rel = double_or_special(require(j, "ber_ci_rel"), "ber_ci_rel");
  r.wall_seconds = require(j, "wall_seconds").as_double();
  r.converged = require(j, "converged").as_bool();
  r.model_ber = require(j, "model_ber").as_double();
  r.model_per = require(j, "model_per").as_double();
  r.from_surrogate = require(j, "from_surrogate").as_bool();
  return r;
}

std::vector<double> sweep_values(double from, double to, double step) {
  if (step <= 0.0 || to < from)
    throw std::invalid_argument("sweep needs from <= to and step > 0");
  // The exact `wlansim sweep` loop, including its epsilon — identical
  // doubles in every consumer.
  std::vector<double> values;
  for (double v = from; v <= to + 1e-9; v += step) values.push_back(v);
  return values;
}

sim::SurrogateAxis axis_from_param(const std::string& param) {
  if (param == "snr") return sim::SurrogateAxis::kSnrDb;
  if (param == "power") return sim::SurrogateAxis::kRxPowerDbm;
  throw std::invalid_argument(
      "service sweeps support param snr|power only (other parameters change "
      "the front-end, i.e. the calibration key)");
}

std::vector<core::LinkConfig> SweepRequest::expand() const {
  const sim::SurrogateAxis axis = axis_from_param(param);
  std::vector<core::LinkConfig> configs;
  const std::vector<double> vals = values();
  configs.reserve(vals.size());
  for (const double v : vals) {
    core::LinkConfig cfg = base;
    if (axis == sim::SurrogateAxis::kSnrDb) {
      cfg.snr_db = v;
    } else {
      cfg.rx_power_dbm = v;
    }
    configs.push_back(cfg);
  }
  return configs;
}

Json SweepRequest::to_json() const {
  Json j = Json::object();
  j.set("op", Json::string("sweep"));
  j.set("param", Json::string(param));
  j.set("from", Json::number(from));
  j.set("to", Json::number(to));
  j.set("step", Json::number(step));
  j.set("link", link_to_json(base));
  j.set("rule", rule_to_json(rule));
  j.set("bin_width_db", Json::number(bin_width_db));
  j.set("use_store", Json::boolean(use_store));
  return j;
}

SweepRequest SweepRequest::from_json(const Json& j) {
  SweepRequest req;
  req.param = require(j, "param").as_string();
  axis_from_param(req.param);  // validate early
  req.from = require(j, "from").as_double();
  req.to = require(j, "to").as_double();
  req.step = require(j, "step").as_double();
  req.base = link_from_json(require(j, "link"));
  req.rule = rule_from_json(require(j, "rule"));
  req.bin_width_db = get_double(j, "bin_width_db", 0.0);
  req.use_store = get_bool(j, "use_store", true);
  sweep_values(req.from, req.to, req.step);  // validate the span
  return req;
}

Json EvalRequest::to_json() const {
  Json j = Json::object();
  j.set("op", Json::string("eval"));
  j.set("param", Json::string(param));
  Json arr = Json::array();
  for (const core::LinkConfig& cfg : links) arr.push_back(link_to_json(cfg));
  j.set("links", std::move(arr));
  j.set("rule", rule_to_json(rule));
  j.set("bin_width_db", Json::number(bin_width_db));
  j.set("use_store", Json::boolean(use_store));
  return j;
}

EvalRequest EvalRequest::from_json(const Json& j) {
  EvalRequest req;
  req.param = require(j, "param").as_string();
  axis_from_param(req.param);
  const Json& links = require(j, "links");
  if (!links.is_array() || links.as_array().empty())
    throw std::runtime_error("protocol: \"links\" must be a non-empty array");
  req.links.reserve(links.as_array().size());
  for (const Json& l : links.as_array()) req.links.push_back(link_from_json(l));
  req.rule = rule_from_json(require(j, "rule"));
  req.bin_width_db = get_double(j, "bin_width_db", 0.5);
  req.use_store = get_bool(j, "use_store", true);
  return req;
}

Json DropRequest::to_json() const {
  Json j = Json::object();
  j.set("op", Json::string("drop"));
  j.set("num_stations", Json::number_u64(cfg.num_stations));
  j.set("num_steps", Json::number_u64(cfg.num_steps));
  j.set("area_half_m", Json::number(cfg.area_half_m));
  Json ap = Json::object();
  ap.set("x", Json::number(cfg.ap.x));
  ap.set("y", Json::number(cfg.ap.y));
  j.set("ap", std::move(ap));
  j.set("tx_power_dbm", Json::number(cfg.tx_power_dbm));
  j.set("noise_figure_db", Json::number(cfg.noise_figure_db));
  j.set("bandwidth_hz", Json::number(cfg.bandwidth_hz));
  Json pl = Json::object();
  pl.set("ref_loss_db", Json::number(cfg.path_loss.ref_loss_db));
  pl.set("ref_distance_m", Json::number(cfg.path_loss.ref_distance_m));
  pl.set("exponent", Json::number(cfg.path_loss.exponent));
  pl.set("shadowing_sigma_db",
         Json::number(cfg.path_loss.shadowing_sigma_db));
  pl.set("min_distance_m", Json::number(cfg.path_loss.min_distance_m));
  j.set("path_loss", std::move(pl));
  j.set("walk_step_m", Json::number(cfg.mobility.step_m));
  Json bsses = Json::array();
  for (const scenario::InterfererBss& bss : cfg.interferers) {
    Json b = Json::object();
    b.set("x", Json::number(bss.position.x));
    b.set("y", Json::number(bss.position.y));
    b.set("tx_power_dbm", Json::number(bss.tx_power_dbm));
    b.set("offset_hz", Json::number(bss.offset_hz));
    bsses.push_back(std::move(b));
  }
  j.set("interferers", std::move(bsses));
  j.set("seed", Json::number_u64(cfg.seed));
  j.set("link", link_to_json(cfg.link));
  j.set("snr_bin_db", Json::number(cfg.snr_bin_db));
  j.set("snr_min_db", Json::number(cfg.snr_min_db));
  j.set("snr_max_db", Json::number(cfg.snr_max_db));
  j.set("adj_bin_db", Json::number(cfg.adj_bin_db));
  j.set("adj_floor_db", Json::number(cfg.adj_floor_db));
  j.set("rule", rule_to_json(cfg.rule));
  j.set("use_store", Json::boolean(cfg.use_store));
  return j;
}

DropRequest DropRequest::from_json(const Json& j) {
  DropRequest req;
  scenario::DropConfig& cfg = req.cfg;
  cfg.num_stations =
      static_cast<std::size_t>(get_u64(j, "num_stations", cfg.num_stations));
  cfg.num_steps =
      static_cast<std::size_t>(get_u64(j, "num_steps", cfg.num_steps));
  cfg.area_half_m = get_double(j, "area_half_m", cfg.area_half_m);
  if (const Json* ap = j.find("ap")) {
    cfg.ap.x = get_double(*ap, "x", 0.0);
    cfg.ap.y = get_double(*ap, "y", 0.0);
  }
  cfg.tx_power_dbm = get_double(j, "tx_power_dbm", cfg.tx_power_dbm);
  cfg.noise_figure_db = get_double(j, "noise_figure_db", cfg.noise_figure_db);
  cfg.bandwidth_hz = get_double(j, "bandwidth_hz", cfg.bandwidth_hz);
  if (const Json* pl = j.find("path_loss")) {
    cfg.path_loss.ref_loss_db =
        get_double(*pl, "ref_loss_db", cfg.path_loss.ref_loss_db);
    cfg.path_loss.ref_distance_m =
        get_double(*pl, "ref_distance_m", cfg.path_loss.ref_distance_m);
    cfg.path_loss.exponent = get_double(*pl, "exponent", cfg.path_loss.exponent);
    cfg.path_loss.shadowing_sigma_db =
        get_double(*pl, "shadowing_sigma_db", cfg.path_loss.shadowing_sigma_db);
    cfg.path_loss.min_distance_m =
        get_double(*pl, "min_distance_m", cfg.path_loss.min_distance_m);
  }
  cfg.mobility.step_m = get_double(j, "walk_step_m", cfg.mobility.step_m);
  if (const Json* bsses = j.find("interferers")) {
    if (!bsses->is_array())
      throw std::runtime_error("protocol: \"interferers\" must be an array");
    for (const Json& b : bsses->as_array()) {
      scenario::InterfererBss bss;
      bss.position.x = get_double(b, "x", 0.0);
      bss.position.y = get_double(b, "y", 0.0);
      bss.tx_power_dbm = get_double(b, "tx_power_dbm", bss.tx_power_dbm);
      bss.offset_hz = get_double(b, "offset_hz", bss.offset_hz);
      cfg.interferers.push_back(bss);
    }
  }
  cfg.seed = get_u64(j, "seed", cfg.seed);
  cfg.link = link_from_json(require(j, "link"));
  cfg.snr_bin_db = get_double(j, "snr_bin_db", cfg.snr_bin_db);
  cfg.snr_min_db = get_double(j, "snr_min_db", cfg.snr_min_db);
  cfg.snr_max_db = get_double(j, "snr_max_db", cfg.snr_max_db);
  cfg.adj_bin_db = get_double(j, "adj_bin_db", cfg.adj_bin_db);
  cfg.adj_floor_db = get_double(j, "adj_floor_db", cfg.adj_floor_db);
  cfg.rule = rule_from_json(require(j, "rule"));
  cfg.use_store = get_bool(j, "use_store", true);
  return req;
}

Json progress_to_json(const core::SweepPointProgress& p) {
  Json j = Json::object();
  j.set("packets", Json::number_u64(p.packets));
  j.set("packets_lost", Json::number_u64(p.packets_lost));
  j.set("packet_errors", Json::number_u64(p.packet_errors));
  j.set("bits", Json::number_u64(p.bits));
  j.set("bit_errors", Json::number_u64(p.bit_errors));
  j.set("evm_sum", Json::number(p.evm_sum));
  j.set("evm_packets", Json::number_u64(p.evm_packets));
  j.set("stopped", Json::boolean(p.stopped));
  j.set("converged", Json::boolean(p.converged));
  return j;
}

core::SweepPointProgress progress_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: progress entry must be an object");
  core::SweepPointProgress p;
  p.packets = require(j, "packets").as_u64();
  p.packets_lost = require(j, "packets_lost").as_u64();
  p.packet_errors = require(j, "packet_errors").as_u64();
  p.bits = require(j, "bits").as_u64();
  p.bit_errors = require(j, "bit_errors").as_u64();
  p.evm_sum = require(j, "evm_sum").as_double();
  p.evm_packets = require(j, "evm_packets").as_u64();
  p.stopped = require(j, "stopped").as_bool();
  p.converged = require(j, "converged").as_bool();
  return p;
}

Json progress_array_to_json(std::span<const core::SweepPointProgress> ps) {
  Json arr = Json::array();
  for (const core::SweepPointProgress& p : ps)
    arr.push_back(progress_to_json(p));
  return arr;
}

std::vector<core::SweepPointProgress> progress_array_from_json(const Json& j) {
  if (!j.is_array())
    throw std::runtime_error("protocol: progress must be an array");
  std::vector<core::SweepPointProgress> ps;
  ps.reserve(j.as_array().size());
  for (const Json& p : j.as_array()) ps.push_back(progress_from_json(p));
  return ps;
}

Json ShardRequest::to_json() const {
  Json j = Json::object();
  j.set("op", Json::string("shard"));
  Json arr = Json::array();
  for (const core::LinkConfig& cfg : links) arr.push_back(link_to_json(cfg));
  j.set("links", std::move(arr));
  j.set("rule", rule_to_json(rule));
  j.set("threads", Json::number_u64(threads));
  j.set("report_every_waves", Json::number_u64(report_every_waves));
  if (!resume.empty()) j.set("resume", progress_array_to_json(resume));
  return j;
}

ShardRequest ShardRequest::from_json(const Json& j) {
  ShardRequest req;
  const Json& links = require(j, "links");
  if (!links.is_array() || links.as_array().empty())
    throw std::runtime_error("protocol: \"links\" must be a non-empty array");
  req.links.reserve(links.as_array().size());
  for (const Json& l : links.as_array()) req.links.push_back(link_from_json(l));
  req.rule = rule_from_json(require(j, "rule"));
  req.threads = static_cast<std::size_t>(get_u64(j, "threads", 0));
  req.report_every_waves =
      static_cast<std::size_t>(get_u64(j, "report_every_waves", 1));
  if (req.report_every_waves == 0) req.report_every_waves = 1;
  if (const Json* r = j.find("resume")) {
    req.resume = progress_array_from_json(*r);
    if (req.resume.size() != req.links.size())
      throw std::runtime_error(
          "protocol: \"resume\" must carry one entry per link");
  }
  return req;
}

Json shard_progress_response(std::span<const core::SweepPointProgress> ps) {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  j.set("shard", Json::string("progress"));
  j.set("progress", progress_array_to_json(ps));
  return j;
}

Json shard_done_response(const std::vector<core::BerResult>& results,
                         std::span<const core::SweepPointProgress> ps,
                         std::uint64_t resumed_packets) {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  j.set("shard", Json::string("done"));
  Json res = Json::array();
  for (const core::BerResult& r : results) res.push_back(result_to_json(r));
  j.set("results", std::move(res));
  j.set("progress", progress_array_to_json(ps));
  j.set("resumed_packets", Json::number_u64(resumed_packets));
  return j;
}

ShardReply shard_reply_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: shard reply must be an object");
  if (!get_bool(j, "ok", false)) {
    const Json* err = j.find("error");
    throw std::runtime_error(err && err->is_string()
                                 ? err->as_string()
                                 : std::string("shard worker error"));
  }
  ShardReply reply;
  const std::string kind = require(j, "shard").as_string();
  if (kind == "done") {
    reply.done = true;
  } else if (kind != "progress") {
    throw std::runtime_error("protocol: shard kind must be progress|done");
  }
  reply.progress = progress_array_from_json(require(j, "progress"));
  if (reply.done) {
    for (const Json& r : require(j, "results").as_array())
      reply.results.push_back(result_from_json(r));
    reply.resumed_packets = get_u64(j, "resumed_packets", 0);
  }
  return reply;
}

Json error_response(const std::string& message, bool resumable) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("error", Json::string(message));
  if (resumable) j.set("resumable", Json::boolean(true));
  return j;
}

Json results_response(const std::vector<double>& values,
                      const std::vector<core::BerResult>& results,
                      const core::DedupStats& stats) {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  Json vals = Json::array();
  for (const double v : values) vals.push_back(Json::number(v));
  j.set("values", std::move(vals));
  Json res = Json::array();
  for (const core::BerResult& r : results) res.push_back(result_to_json(r));
  j.set("results", std::move(res));
  Json st = Json::object();
  st.set("queries", Json::number_u64(stats.queries));
  st.set("distinct", Json::number_u64(stats.distinct));
  st.set("warm", Json::number_u64(stats.warm));
  st.set("cold", Json::number_u64(stats.cold));
  j.set("stats", std::move(st));
  return j;
}

ResultsReply results_reply_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: response must be an object");
  if (!get_bool(j, "ok", false)) {
    const Json* err = j.find("error");
    throw std::runtime_error(err && err->is_string()
                                 ? err->as_string()
                                 : std::string("service error"));
  }
  ResultsReply reply;
  for (const Json& v : require(j, "values").as_array())
    reply.values.push_back(v.as_double());
  for (const Json& r : require(j, "results").as_array())
    reply.results.push_back(result_from_json(r));
  if (const Json* st = j.find("stats")) {
    reply.stats.queries = static_cast<std::size_t>(get_u64(*st, "queries", 0));
    reply.stats.distinct =
        static_cast<std::size_t>(get_u64(*st, "distinct", 0));
    reply.stats.warm = static_cast<std::size_t>(get_u64(*st, "warm", 0));
    reply.stats.cold = static_cast<std::size_t>(get_u64(*st, "cold", 0));
  }
  return reply;
}

Json drop_response(const scenario::DropSummary& summary) {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  Json steps = Json::array();
  for (const scenario::StepSummary& st : summary.steps) {
    Json s = Json::object();
    s.set("step", Json::number_u64(st.step));
    s.set("queries", Json::number_u64(st.dedup.queries));
    s.set("distinct", Json::number_u64(st.dedup.distinct));
    s.set("warm", Json::number_u64(st.dedup.warm));
    s.set("cold", Json::number_u64(st.dedup.cold));
    s.set("wall_seconds", Json::number(st.wall_seconds));
    s.set("mean_snr_db", Json::number(st.mean_snr_db));
    s.set("mean_ber", Json::number(st.mean_ber));
    s.set("mean_goodput_mbps", Json::number(st.mean_goodput_mbps));
    steps.push_back(std::move(s));
  }
  j.set("steps", std::move(steps));
  Json tot = Json::object();
  tot.set("queries", Json::number_u64(summary.totals.queries));
  tot.set("distinct", Json::number_u64(summary.totals.distinct));
  tot.set("warm", Json::number_u64(summary.totals.warm));
  tot.set("cold", Json::number_u64(summary.totals.cold));
  j.set("totals", std::move(tot));
  j.set("wall_seconds", Json::number(summary.wall_seconds));
  return j;
}

scenario::DropSummary drop_summary_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: drop response must be an object");
  if (!get_bool(j, "ok", false)) {
    const Json* err = j.find("error");
    throw std::runtime_error(err && err->is_string()
                                 ? err->as_string()
                                 : std::string("service error"));
  }
  scenario::DropSummary summary;
  for (const Json& s : require(j, "steps").as_array()) {
    scenario::StepSummary st;
    st.step = static_cast<std::uint32_t>(require(s, "step").as_u64());
    st.dedup.queries = static_cast<std::size_t>(require(s, "queries").as_u64());
    st.dedup.distinct =
        static_cast<std::size_t>(require(s, "distinct").as_u64());
    st.dedup.warm = static_cast<std::size_t>(require(s, "warm").as_u64());
    st.dedup.cold = static_cast<std::size_t>(require(s, "cold").as_u64());
    st.wall_seconds = require(s, "wall_seconds").as_double();
    st.mean_snr_db = require(s, "mean_snr_db").as_double();
    st.mean_ber = require(s, "mean_ber").as_double();
    st.mean_goodput_mbps = require(s, "mean_goodput_mbps").as_double();
    summary.steps.push_back(st);
  }
  const Json& tot = require(j, "totals");
  summary.totals.queries =
      static_cast<std::size_t>(require(tot, "queries").as_u64());
  summary.totals.distinct =
      static_cast<std::size_t>(require(tot, "distinct").as_u64());
  summary.totals.warm = static_cast<std::size_t>(require(tot, "warm").as_u64());
  summary.totals.cold = static_cast<std::size_t>(require(tot, "cold").as_u64());
  summary.wall_seconds = require(j, "wall_seconds").as_double();
  return summary;
}

}  // namespace wlansim::service
