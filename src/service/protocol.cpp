#include "service/protocol.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/experiments.h"
#include "phy80211a/params.h"

namespace wlansim::service {

namespace {

/// Finite doubles travel as numbers; the CI sentinel values as strings
/// (JSON has no inf/nan tokens).
Json number_or_special(double v) {
  if (std::isfinite(v)) return Json::number(v);
  if (std::isnan(v)) return Json::string("nan");
  return Json::string(v > 0 ? "inf" : "-inf");
}

double double_or_special(const Json& j, const char* what) {
  if (j.is_number()) return j.as_double();
  if (j.is_string()) {
    const std::string& s = j.as_string();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
  }
  throw std::runtime_error(std::string("protocol: bad numeric field ") + what);
}

const Json& require(const Json& j, const char* key) {
  const Json* v = j.find(key);
  if (!v)
    throw std::runtime_error(std::string("protocol: missing field \"") + key +
                             "\"");
  return *v;
}

double get_double(const Json& j, const char* key, double fallback) {
  const Json* v = j.find(key);
  return v ? v->as_double() : fallback;
}

std::uint64_t get_u64(const Json& j, const char* key, std::uint64_t fallback) {
  const Json* v = j.find(key);
  return v ? v->as_u64() : fallback;
}

bool get_bool(const Json& j, const char* key, bool fallback) {
  const Json* v = j.find(key);
  return v ? v->as_bool() : fallback;
}

long rate_to_mbps(phy::Rate r) {
  return static_cast<long>(phy::rate_params(r).rate_mbps);
}

phy::Rate rate_from_mbps_value(std::uint64_t mbps) {
  switch (mbps) {
    case 6: return phy::Rate::kMbps6;
    case 9: return phy::Rate::kMbps9;
    case 12: return phy::Rate::kMbps12;
    case 18: return phy::Rate::kMbps18;
    case 24: return phy::Rate::kMbps24;
    case 36: return phy::Rate::kMbps36;
    case 48: return phy::Rate::kMbps48;
    case 54: return phy::Rate::kMbps54;
    default:
      throw std::runtime_error("protocol: rate_mbps must be one of "
                               "6 9 12 18 24 36 48 54");
  }
}

}  // namespace

Json link_to_json(const core::LinkConfig& cfg) {
  Json j = Json::object();
  j.set("rate_mbps", Json::number_u64(static_cast<std::uint64_t>(
                         rate_to_mbps(cfg.rate))));
  j.set("psdu_bytes", Json::number_u64(cfg.psdu_bytes));
  j.set("rx_power_dbm", Json::number(cfg.rx_power_dbm));
  if (cfg.snr_db.has_value()) j.set("snr_db", Json::number(*cfg.snr_db));
  const char* rf = "system";
  switch (cfg.rf_engine) {
    case core::RfEngine::kNone: rf = "none"; break;
    case core::RfEngine::kSystemLevel: rf = "system"; break;
    case core::RfEngine::kCosim: rf = "cosim"; break;
    case core::RfEngine::kCustom:
      throw std::invalid_argument(
          "link_to_json: a custom RF block cannot be serialized");
  }
  j.set("rf_engine", Json::string(rf));
  j.set("lna_p1db_in_dbm", Json::number(cfg.rf.lna_p1db_in_dbm));
  j.set("bb_bandwidth_factor", Json::number(cfg.rf.bb_bandwidth_factor));
  j.set("sco_ppm", Json::number(cfg.sco_ppm));
  if (cfg.interferer.has_value()) {
    Json adj = Json::object();
    adj.set("offset_hz", Json::number(cfg.interferer->offset_hz));
    adj.set("level_db", Json::number(cfg.interferer->level_db));
    j.set("adjacent", std::move(adj));
  }
  j.set("seed", Json::number_u64(cfg.seed));
  return j;
}

core::LinkConfig link_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: \"link\" must be an object");
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = rate_from_mbps_value(get_u64(j, "rate_mbps", 24));
  cfg.psdu_bytes =
      static_cast<std::size_t>(get_u64(j, "psdu_bytes", cfg.psdu_bytes));
  cfg.rx_power_dbm = get_double(j, "rx_power_dbm", cfg.rx_power_dbm);
  if (const Json* snr = j.find("snr_db")) {
    cfg.snr_db = snr->as_double();
  } else {
    cfg.snr_db.reset();
  }
  const Json* rf = j.find("rf_engine");
  const std::string engine = rf ? rf->as_string() : "system";
  if (engine == "none") {
    cfg.rf_engine = core::RfEngine::kNone;
  } else if (engine == "system") {
    cfg.rf_engine = core::RfEngine::kSystemLevel;
  } else if (engine == "cosim") {
    cfg.rf_engine = core::RfEngine::kCosim;
  } else {
    throw std::runtime_error("protocol: rf_engine must be none|system|cosim");
  }
  cfg.rf.lna_p1db_in_dbm =
      get_double(j, "lna_p1db_in_dbm", cfg.rf.lna_p1db_in_dbm);
  cfg.rf.bb_bandwidth_factor =
      get_double(j, "bb_bandwidth_factor", cfg.rf.bb_bandwidth_factor);
  cfg.sco_ppm = get_double(j, "sco_ppm", cfg.sco_ppm);
  if (const Json* adj = j.find("adjacent")) {
    channel::InterfererConfig ic;
    ic.offset_hz = get_double(*adj, "offset_hz", ic.offset_hz);
    ic.level_db = get_double(*adj, "level_db", ic.level_db);
    cfg.interferer = ic;
  }
  cfg.seed = get_u64(j, "seed", cfg.seed);
  return cfg;
}

Json rule_to_json(const sim::StoppingRule& rule) {
  Json j = Json::object();
  j.set("target_rel_ci", Json::number(rule.target_rel_ci));
  j.set("confidence_z", Json::number(rule.confidence_z));
  j.set("min_errors", Json::number_u64(rule.min_errors));
  j.set("min_packets", Json::number_u64(rule.min_packets));
  j.set("max_packets", Json::number_u64(rule.max_packets));
  return j;
}

sim::StoppingRule rule_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: \"rule\" must be an object");
  sim::StoppingRule rule;
  rule.target_rel_ci = get_double(j, "target_rel_ci", rule.target_rel_ci);
  rule.confidence_z = get_double(j, "confidence_z", rule.confidence_z);
  rule.min_errors =
      static_cast<std::size_t>(get_u64(j, "min_errors", rule.min_errors));
  rule.min_packets =
      static_cast<std::size_t>(get_u64(j, "min_packets", rule.min_packets));
  rule.max_packets =
      static_cast<std::size_t>(get_u64(j, "max_packets", rule.max_packets));
  return rule;
}

Json result_to_json(const core::BerResult& r) {
  Json j = Json::object();
  j.set("packets", Json::number_u64(r.packets));
  j.set("packets_lost", Json::number_u64(r.packets_lost));
  j.set("packet_errors", Json::number_u64(r.packet_errors));
  j.set("bits", Json::number_u64(r.bits));
  j.set("bit_errors", Json::number_u64(r.bit_errors));
  j.set("evm_rms_avg", Json::number(r.evm_rms_avg));
  j.set("ber_ci_rel", number_or_special(r.ber_ci_rel));
  j.set("wall_seconds", Json::number(r.wall_seconds));
  j.set("converged", Json::boolean(r.converged));
  j.set("model_ber", Json::number(r.model_ber));
  j.set("model_per", Json::number(r.model_per));
  j.set("from_surrogate", Json::boolean(r.from_surrogate));
  return j;
}

core::BerResult result_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: result must be an object");
  core::BerResult r;
  r.packets = static_cast<std::size_t>(require(j, "packets").as_u64());
  r.packets_lost =
      static_cast<std::size_t>(require(j, "packets_lost").as_u64());
  r.packet_errors =
      static_cast<std::size_t>(require(j, "packet_errors").as_u64());
  r.bits = static_cast<std::size_t>(require(j, "bits").as_u64());
  r.bit_errors = static_cast<std::size_t>(require(j, "bit_errors").as_u64());
  r.evm_rms_avg = require(j, "evm_rms_avg").as_double();
  r.ber_ci_rel = double_or_special(require(j, "ber_ci_rel"), "ber_ci_rel");
  r.wall_seconds = require(j, "wall_seconds").as_double();
  r.converged = require(j, "converged").as_bool();
  r.model_ber = require(j, "model_ber").as_double();
  r.model_per = require(j, "model_per").as_double();
  r.from_surrogate = require(j, "from_surrogate").as_bool();
  return r;
}

std::vector<double> sweep_values(double from, double to, double step) {
  if (step <= 0.0 || to < from)
    throw std::invalid_argument("sweep needs from <= to and step > 0");
  // The exact `wlansim sweep` loop, including its epsilon — identical
  // doubles in every consumer.
  std::vector<double> values;
  for (double v = from; v <= to + 1e-9; v += step) values.push_back(v);
  return values;
}

sim::SurrogateAxis axis_from_param(const std::string& param) {
  if (param == "snr") return sim::SurrogateAxis::kSnrDb;
  if (param == "power") return sim::SurrogateAxis::kRxPowerDbm;
  throw std::invalid_argument(
      "service sweeps support param snr|power only (other parameters change "
      "the front-end, i.e. the calibration key)");
}

std::vector<core::LinkConfig> SweepRequest::expand() const {
  const sim::SurrogateAxis axis = axis_from_param(param);
  std::vector<core::LinkConfig> configs;
  const std::vector<double> vals = values();
  configs.reserve(vals.size());
  for (const double v : vals) {
    core::LinkConfig cfg = base;
    if (axis == sim::SurrogateAxis::kSnrDb) {
      cfg.snr_db = v;
    } else {
      cfg.rx_power_dbm = v;
    }
    configs.push_back(cfg);
  }
  return configs;
}

Json SweepRequest::to_json() const {
  Json j = Json::object();
  j.set("op", Json::string("sweep"));
  j.set("param", Json::string(param));
  j.set("from", Json::number(from));
  j.set("to", Json::number(to));
  j.set("step", Json::number(step));
  j.set("link", link_to_json(base));
  j.set("rule", rule_to_json(rule));
  j.set("bin_width_db", Json::number(bin_width_db));
  j.set("use_store", Json::boolean(use_store));
  return j;
}

SweepRequest SweepRequest::from_json(const Json& j) {
  SweepRequest req;
  req.param = require(j, "param").as_string();
  axis_from_param(req.param);  // validate early
  req.from = require(j, "from").as_double();
  req.to = require(j, "to").as_double();
  req.step = require(j, "step").as_double();
  req.base = link_from_json(require(j, "link"));
  req.rule = rule_from_json(require(j, "rule"));
  req.bin_width_db = get_double(j, "bin_width_db", 0.0);
  req.use_store = get_bool(j, "use_store", true);
  sweep_values(req.from, req.to, req.step);  // validate the span
  return req;
}

Json EvalRequest::to_json() const {
  Json j = Json::object();
  j.set("op", Json::string("eval"));
  j.set("param", Json::string(param));
  Json arr = Json::array();
  for (const core::LinkConfig& cfg : links) arr.push_back(link_to_json(cfg));
  j.set("links", std::move(arr));
  j.set("rule", rule_to_json(rule));
  j.set("bin_width_db", Json::number(bin_width_db));
  j.set("use_store", Json::boolean(use_store));
  return j;
}

EvalRequest EvalRequest::from_json(const Json& j) {
  EvalRequest req;
  req.param = require(j, "param").as_string();
  axis_from_param(req.param);
  const Json& links = require(j, "links");
  if (!links.is_array() || links.as_array().empty())
    throw std::runtime_error("protocol: \"links\" must be a non-empty array");
  req.links.reserve(links.as_array().size());
  for (const Json& l : links.as_array()) req.links.push_back(link_from_json(l));
  req.rule = rule_from_json(require(j, "rule"));
  req.bin_width_db = get_double(j, "bin_width_db", 0.5);
  req.use_store = get_bool(j, "use_store", true);
  return req;
}

Json error_response(const std::string& message, bool resumable) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("error", Json::string(message));
  if (resumable) j.set("resumable", Json::boolean(true));
  return j;
}

Json results_response(const std::vector<double>& values,
                      const std::vector<core::BerResult>& results,
                      const core::DedupStats& stats) {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  Json vals = Json::array();
  for (const double v : values) vals.push_back(Json::number(v));
  j.set("values", std::move(vals));
  Json res = Json::array();
  for (const core::BerResult& r : results) res.push_back(result_to_json(r));
  j.set("results", std::move(res));
  Json st = Json::object();
  st.set("queries", Json::number_u64(stats.queries));
  st.set("distinct", Json::number_u64(stats.distinct));
  st.set("warm", Json::number_u64(stats.warm));
  st.set("cold", Json::number_u64(stats.cold));
  j.set("stats", std::move(st));
  return j;
}

ResultsReply results_reply_from_json(const Json& j) {
  if (!j.is_object())
    throw std::runtime_error("protocol: response must be an object");
  if (!get_bool(j, "ok", false)) {
    const Json* err = j.find("error");
    throw std::runtime_error(err && err->is_string()
                                 ? err->as_string()
                                 : std::string("service error"));
  }
  ResultsReply reply;
  for (const Json& v : require(j, "values").as_array())
    reply.values.push_back(v.as_double());
  for (const Json& r : require(j, "results").as_array())
    reply.results.push_back(result_from_json(r));
  if (const Json* st = j.find("stats")) {
    reply.stats.queries = static_cast<std::size_t>(get_u64(*st, "queries", 0));
    reply.stats.distinct =
        static_cast<std::size_t>(get_u64(*st, "distinct", 0));
    reply.stats.warm = static_cast<std::size_t>(get_u64(*st, "warm", 0));
    reply.stats.cold = static_cast<std::size_t>(get_u64(*st, "cold", 0));
  }
  return reply;
}

}  // namespace wlansim::service
