// Checkpoint/resume for the service's pooled cold passes.
//
// The adaptive engine's state at any 8-packet quantum boundary compresses
// to one SweepPointProgress per point (core/parallel.h): counter-based
// seeding makes the evaluated-prefix length the complete RNG state, and
// the streaming accumulators are the exact packet-order reduction. This
// module persists that vector — atomically, tmp+rename, one file per job
// key — so a killed daemon resumes a long study without redoing converged
// points, and completes it bit-identically to an uninterrupted run.
//
// A job key is the rule plus every config's link fingerprint in order, so
// a checkpoint can never resume under a different question: a changed
// rule, config, or point order produces a different key (and file), and a
// stale file for the old key is simply never read again. Corrupt or
// truncated files load as nullopt — a clean cold start, never an error.
#pragma once

#include <atomic>
#include <filesystem>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/parallel.h"

namespace wlansim::service {

/// Thrown by run_cold_pass_checkpointed when the stop flag preempted the
/// sweep. The checkpoint file holds the progress; resubmitting the same
/// job (same key) resumes from it.
class PreemptedError : public std::runtime_error {
 public:
  explicit PreemptedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// The content address of a cold pass: stopping rule (bit-exact hexfloat
/// serialization) + every config's link fingerprint, in order. Empty when
/// any config is not fingerprintable (such a pass cannot be checkpointed).
std::string cold_pass_key(std::span<const core::LinkConfig> configs,
                          const sim::StoppingRule& rule);

/// `<dir>/<fnv1a64(key)>.ckpt`.
std::filesystem::path checkpoint_path(const std::filesystem::path& dir,
                                      std::string_view key);

/// Serialized checkpoint text (exposed for tests; the file payload).
/// Embeds the writer's PID and the hex-encoded full key.
std::string serialize_checkpoint(
    std::string_view key, std::span<const core::SweepPointProgress> progress);

/// Parse a checkpoint; nullopt on any malformed, truncated, or
/// wrong-key input. `writer_pid` (optional) receives the recorded PID —
/// informational only; resume is valid from any process.
std::optional<std::vector<core::SweepPointProgress>> parse_checkpoint(
    std::string_view text, std::string_view expected_key,
    long* writer_pid = nullptr);

/// Atomic tmp+rename write; false on I/O failure (checkpointing is best
/// effort — a failed save costs redone work, never correctness).
bool save_checkpoint(const std::filesystem::path& dir, std::string_view key,
                     std::span<const core::SweepPointProgress> progress);

/// Load the checkpoint for `key`; nullopt when absent/corrupt/mismatched
/// or when the point count differs from `expect_points`.
std::optional<std::vector<core::SweepPointProgress>> load_checkpoint(
    const std::filesystem::path& dir, std::string_view key,
    std::size_t expect_points, long* writer_pid = nullptr);

void remove_checkpoint(const std::filesystem::path& dir, std::string_view key);

/// sweep_ber_adaptive with checkpointing: loads any checkpoint for this
/// (configs, rule) key, resumes from it, saves progress at every
/// `checkpoint_every_waves`-th wave boundary, and removes the file on
/// completion. When `stop` becomes true the sweep preempts at the next
/// boundary, the checkpoint is saved, and PreemptedError is thrown — the
/// caller (the scheduler's cold-pass hook) must NOT backfill any store
/// from a preempted pass. Results are bit-identical to
/// core::sweep_ber_adaptive(configs, rule, opts) in every field except
/// wall_seconds.
std::vector<core::BerResult> run_cold_pass_checkpointed(
    const std::filesystem::path& dir,
    std::span<const core::LinkConfig> configs, const sim::StoppingRule& rule,
    const core::SweepOptions& opts, const std::atomic<bool>* stop = nullptr,
    std::size_t checkpoint_every_waves = 1);

}  // namespace wlansim::service
