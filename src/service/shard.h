// Sharded cold-pass execution: one pooled adaptive pass fanned out across
// worker processes and merged back bit-identically.
//
// The enabling invariant is the adaptive engine's purity contract
// (core/parallel.h): every point's result is a pure function of (config,
// rule), and every quantum-boundary state compresses to one
// SweepPointProgress. So a cold pass over K first-appearance-ordered keys
// can be cut into S shards — shard s takes keys s, s+S, s+2S, ... (strided,
// so a monotone SNR axis spreads its expensive low-SNR points evenly) —
// run on S independent worker processes, and the merged results are
// bit-identical to the single-process pooled pass in every field except
// wall_seconds. Workers stream per-point progress at stop-quantum
// boundaries; the coordinator folds those reports into the SAME whole-pass
// checkpoint key the single-process path uses, so a preempted sharded pass
// resumes under any later worker count (including zero), and a worker
// SIGKILL mid-shard costs at most report_every_waves quanta of redone
// work: the shard is reassigned seeded from its last reported progress.
//
// Coordinator and worker speak the normal wire protocol (an "op":"shard"
// request answered by streamed progress lines and one done line —
// service/protocol.h), so a worker is just a `wlansim_daemon --worker`
// reached over its socket: spawned locally by the coordinator or attached
// as an already-running daemon anywhere the socket reaches.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/parallel.h"
#include "service/protocol.h"

namespace wlansim::service {

/// Connect to a Unix-domain stream socket, retrying ECONNREFUSED/ENOENT
/// with a short backoff until `timeout_ms` elapses — the daemon-startup
/// race (socket file not yet bound) becomes a wait instead of a failure.
/// Returns the connected fd, or -1 when the timeout expires.
int connect_unix_retry(const std::filesystem::path& path, int timeout_ms);

/// Strided partition of indices [0, n) into at most `shards` non-empty
/// lists: shard s gets s, s+S, s+2S, ... This is the partition rule of the
/// sharding contract (docs/PERFORMANCE.md): deterministic for (n, shards),
/// and interleaved so a sorted axis spreads its expensive end across all
/// workers instead of handing it to the last one.
std::vector<std::vector<std::size_t>> shard_partition(std::size_t n,
                                                      std::size_t shards);

/// Per-point merge of two progress vectors for the SAME (configs, rule):
/// both are quantum-boundary states on one pure trajectory, so whichever
/// entry has evaluated more packets is simply further along — take it.
/// Either input may be empty (treated as all-zero). Sizes must otherwise
/// match `n`.
std::vector<core::SweepPointProgress> merge_progress(
    std::span<const core::SweepPointProgress> a,
    std::span<const core::SweepPointProgress> b, std::size_t n);

// --- Worker side ------------------------------------------------------------

struct ShardServeOptions {
  /// Per-shard checkpoint directory (keys are cold_pass_key of the SHARD's
  /// config list, distinct from the coordinator's whole-pass key).
  std::filesystem::path checkpoint_dir;
  std::size_t checkpoint_every_waves = 1;
  /// Worker's own shutdown flag (the daemon's SIGTERM flag).
  const std::atomic<bool>* stop = nullptr;
};

/// Run one shard request, streaming progress lines and the final done line
/// to `fd` (service/protocol.h framing). Resume priority: the request's
/// seed merged per-point (merge_progress) with any local shard checkpoint
/// — whichever is further ahead wins, so a reassigned shard never redoes
/// work its last report already covered, and a worker restarted in place
/// picks up its own checkpoint even from an empty request. The pass
/// preempts (checkpointing first) when `opts.stop` fires or the
/// coordinator's end of the socket vanishes. Returns true when the done
/// line was sent; false on preemption (the connection should close).
bool serve_shard(int fd, const ShardRequest& req,
                 const ShardServeOptions& opts);

// --- Coordinator ------------------------------------------------------------

struct ShardStats {
  std::uint64_t passes = 0;          ///< sharded cold passes completed
  std::uint64_t shards = 0;          ///< shard dispatches (incl. reassigns)
  std::uint64_t reassigned = 0;      ///< shards re-dispatched after a loss
  std::uint64_t worker_respawns = 0; ///< dead spawned workers replaced
  /// Per-shard resumed_packets of the last completed pass (tests assert a
  /// corrupt checkpoint forced resumed_packets == 0 on exactly one shard).
  std::vector<std::uint64_t> last_resumed_packets;
};

/// Fans one cold pass out across worker daemons and merges the results.
/// run() is a conforming core::ColdPassFn body: bit-identical to
/// sweep_ber_adaptive(configs, rule, opts) except wall_seconds.
class ShardCoordinator {
 public:
  struct Options {
    /// Local worker processes to spawn (`wlansim_daemon --worker`),
    /// lazily on the first sharded pass. 0 = attach-only.
    std::size_t workers = 0;
    /// Sockets of already-running worker daemons to attach.
    std::vector<std::filesystem::path> attach_sockets;
    /// Worker binary for spawned workers; empty = $WLANSIM_DAEMON_BIN,
    /// else /proc/self/exe when this process IS wlansim_daemon, else
    /// ../tools/wlansim_daemon next to the executable (build-tree tests
    /// and benches).
    std::filesystem::path worker_binary;
    /// Whole-pass checkpoint directory — the SAME directory and key the
    /// single-process run_cold_pass_checkpointed path uses, so sharded
    /// and unsharded runs resume each other's work.
    std::filesystem::path checkpoint_dir;
    std::size_t checkpoint_every_waves = 1;
    /// MC threads per worker (ShardRequest::threads).
    std::size_t worker_threads = 0;
    /// Preemption flag (the scheduler's stop flag).
    const std::atomic<bool>* stop = nullptr;
  };

  explicit ShardCoordinator(Options opts);
  ~ShardCoordinator();  // SIGTERM + reap spawned workers

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Workers configured (spawned slots + attached sockets).
  std::size_t num_workers() const;
  /// PIDs of currently-live spawned workers (tests SIGKILL one).
  std::vector<pid_t> worker_pids() const;

  /// Execute the pass sharded. Throws PreemptedError after saving the
  /// merged whole-pass checkpoint when opts.stop fires mid-pass; throws
  /// std::runtime_error when no worker can be reached at all.
  std::vector<core::BerResult> run(std::span<const core::LinkConfig> configs,
                                   const sim::StoppingRule& rule,
                                   const core::SweepOptions& sweep_opts);

  ShardStats stats() const;

 private:
  struct Worker {
    std::filesystem::path socket;
    bool spawned = false;  ///< ours to (re)spawn and reap
    pid_t pid = -1;
    int fd = -1;
    std::string rx;        ///< per-connection receive buffer
    int shard = -1;        ///< shard currently running here (-1 = idle)
  };

  bool ensure_worker(Worker& w);  ///< spawn/connect as needed
  void respawn(Worker& w);
  void close_worker(Worker& w);
  bool dispatch(Worker& w, int shard_index, const ShardRequest& req);

  Options opts_;
  std::filesystem::path spawn_dir_;  ///< sockets of spawned workers
  std::vector<Worker> workers_;
  mutable std::mutex mu_;  ///< guards stats_ and worker pids for readers
  ShardStats stats_;
};

}  // namespace wlansim::service
