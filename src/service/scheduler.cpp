#include "service/scheduler.h"

#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "service/checkpoint.h"

namespace wlansim::service {

namespace {

/// Jobs coalesce only when every knob that shapes evaluation matches:
/// axis, bin width, the full stopping rule, and store use. Exact double
/// comparison is deliberate — "almost the same rule" is a different
/// question and must not share results.
using GroupKey = std::tuple<int, double, bool, double, double, std::uint64_t,
                            std::uint64_t, std::uint64_t>;

GroupKey group_key(const JobRequest& req) {
  return {static_cast<int>(req.axis),
          req.bin_width_db,
          req.use_store,
          req.rule.target_rel_ci,
          req.rule.confidence_z,
          static_cast<std::uint64_t>(req.rule.min_errors),
          static_cast<std::uint64_t>(req.rule.min_packets),
          static_cast<std::uint64_t>(req.rule.max_packets)};
}

}  // namespace

Scheduler::Scheduler(Options opts)
    : opts_(std::move(opts)),
      store_dir_(opts_.store_dir.empty() ? core::default_calibration_dir()
                                         : opts_.store_dir),
      checkpoint_dir_(opts_.checkpoint_dir.empty() ? store_dir_
                                                   : opts_.checkpoint_dir),
      cache_(sim::CalibrationStore(store_dir_)),
      paused_(opts_.start_paused) {
  if (opts_.workers > 0 || !opts_.worker_sockets.empty()) {
    ShardCoordinator::Options copts;
    copts.workers = opts_.workers;
    copts.attach_sockets = opts_.worker_sockets;
    copts.worker_binary = opts_.worker_binary;
    copts.checkpoint_dir = checkpoint_dir_;
    copts.checkpoint_every_waves = opts_.checkpoint_every_waves;
    copts.worker_threads = opts_.threads;
    copts.stop = &stop_flag_;
    coordinator_ = std::make_unique<ShardCoordinator>(std::move(copts));
  }
  engine_ = std::thread([this] { engine_loop(); });
}

Scheduler::~Scheduler() { stop(); }

std::future<JobResult> Scheduler::submit(JobRequest req) {
  if (req.configs.empty())
    throw std::invalid_argument("Scheduler::submit: empty config list");
  Pending p;
  p.req = std::move(req);
  std::future<JobResult> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
      throw std::runtime_error("Scheduler::submit: scheduler is stopped");
    pending_.push_back(std::move(p));
    ++stats_.jobs;
  }
  cv_.notify_all();
  return fut;
}

void Scheduler::resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Scheduler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Second caller: the engine is already winding down; fall through to
      // the join so stop() only returns once the engine is gone.
    }
    stopping_ = true;
    paused_ = false;
  }
  stop_flag_.store(true);
  cv_.notify_all();
  if (engine_.joinable()) engine_.join();
}

std::future<scenario::DropSummary> Scheduler::submit_drop(
    scenario::DropConfig cfg) {
  PendingDrop p;
  p.cfg = std::move(cfg);
  std::future<scenario::DropSummary> fut = p.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_)
      throw std::runtime_error("Scheduler::submit_drop: scheduler is stopped");
    pending_drops_.push_back(std::move(p));
    ++stats_.jobs;
  }
  cv_.notify_all();
  return fut;
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    st = stats_;
  }
  if (coordinator_) {
    const ShardStats ss = coordinator_->stats();
    st.workers = coordinator_->num_workers();
    st.sharded_passes = ss.passes;
    st.shard_reassigned = ss.reassigned;
    st.worker_respawns = ss.worker_respawns;
  }
  return st;
}

core::ColdPassFn Scheduler::cold_pass_hook() {
  return [this](std::span<const core::LinkConfig> cfgs,
                const sim::StoppingRule& rule,
                const core::SweepOptions& sopts) {
    // A pass with more than one dedup key fans out across the workers;
    // single-key passes (and unsharded daemons) run the plain checkpointed
    // path. Both are bit-identical to sweep_ber_adaptive on `cfgs` — the
    // coordinator shares the checkpointed path's key, so either executor
    // resumes the other's preempted work.
    if (coordinator_ && coordinator_->num_workers() > 0 && cfgs.size() > 1)
      return coordinator_->run(cfgs, rule, sopts);
    return run_cold_pass_checkpointed(checkpoint_dir_, cfgs, rule, sopts,
                                      &stop_flag_,
                                      opts_.checkpoint_every_waves);
  };
}

void Scheduler::engine_loop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<PendingDrop> drops;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stopping_ ||
               (!paused_ && (!pending_.empty() || !pending_drops_.empty()));
      });
      if (stopping_) {
        batch = std::move(pending_);
        pending_.clear();
        drops = std::move(pending_drops_);
        pending_drops_.clear();
        stats_.preempted += batch.size() + drops.size();
        lock.unlock();
        const auto err = std::make_exception_ptr(PreemptedError(
            "job preempted: scheduler stopping before evaluation"));
        for (Pending& p : batch) p.promise.set_exception(err);
        for (PendingDrop& p : drops) p.promise.set_exception(err);
        return;
      }
      batch = std::move(pending_);
      pending_.clear();
      drops = std::move(pending_drops_);
      pending_drops_.clear();
      ++stats_.batches;
    }
    run_batch(batch);
    run_drops(drops);
  }
}

void Scheduler::run_drops(std::vector<PendingDrop>& drops) {
  for (PendingDrop& p : drops) {
    // The daemon owns the execution resources; the request owns only the
    // question. The shared in-memory cache stays out deliberately —
    // run_drop builds its own store view, and the store files are the
    // coherence point (exactly how the CLI behaves against the same dir).
    p.cfg.threads = opts_.threads;
    p.cfg.store_dir = store_dir_;
    p.cfg.cold_pass = cold_pass_hook();
    try {
      scenario::DropSummary summary = scenario::run_drop(p.cfg, nullptr);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.drops;
        stats_.dedup += summary.totals;
      }
      p.promise.set_value(std::move(summary));
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      try {
        std::rethrow_exception(err);
      } catch (const PreemptedError&) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.preempted;
      } catch (...) {
      }
      p.promise.set_exception(err);
    }
  }
}

void Scheduler::run_batch(std::vector<Pending>& batch) {
  // Group the whole drained queue by evaluation semantics; each group is
  // one pooled sweep_ber_deduped pass.
  std::map<GroupKey, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < batch.size(); ++i)
    groups[group_key(batch[i].req)].push_back(i);

  for (const auto& [key, members] : groups) {
    const JobRequest& proto = batch[members.front()].req;

    // Concatenate in submission order: the dedup layer keys by first
    // appearance, so earlier submitters' configs define the
    // representatives — deterministic for a fixed queue content.
    std::vector<core::LinkConfig> all;
    std::vector<std::pair<std::size_t, std::size_t>> extents;  // offset, count
    for (const std::size_t i : members) {
      extents.emplace_back(all.size(), batch[i].req.configs.size());
      all.insert(all.end(), batch[i].req.configs.begin(),
                 batch[i].req.configs.end());
    }

    core::DedupOptions dopts;
    dopts.surrogate.store_dir = store_dir_;
    dopts.surrogate.axis = proto.axis;
    dopts.surrogate.rule = proto.rule;
    dopts.surrogate.threads = opts_.threads;
    dopts.surrogate.cache = proto.use_store ? &cache_ : nullptr;
    dopts.bin_width_db = proto.bin_width_db;
    dopts.use_store = proto.use_store;
    dopts.cold_pass = cold_pass_hook();

    try {
      core::DedupStats dstats;
      const std::vector<core::BerResult> results =
          core::sweep_ber_deduped(all, dopts, &dstats);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.groups;
        stats_.dedup += dstats;
      }
      for (std::size_t m = 0; m < members.size(); ++m) {
        const auto [offset, count] = extents[m];
        JobResult jr;
        jr.results.assign(results.begin() + static_cast<std::ptrdiff_t>(offset),
                          results.begin() +
                              static_cast<std::ptrdiff_t>(offset + count));
        jr.stats = dstats;
        jr.stats.queries = count;  // group-level dedup, per-job query count
        batch[members[m]].promise.set_value(std::move(jr));
      }
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      bool preempted = false;
      try {
        std::rethrow_exception(err);
      } catch (const PreemptedError&) {
        preempted = true;
      } catch (...) {
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (preempted) stats_.preempted += members.size();
      }
      for (const std::size_t i : members)
        batch[i].promise.set_exception(err);
    }
  }
}

}  // namespace wlansim::service
