#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "rf/analyses.h"
#include "sim/cosim.h"

namespace wlansim::sim {
namespace {

rf::DoubleConversionConfig quiet_rf() {
  rf::DoubleConversionConfig cfg;
  cfg.noise_enabled = false;
  cfg.mixer2_dc_offset = {0.0, 0.0};
  cfg.adc.enabled = false;
  cfg.agc.loop_gain = 0.0;  // fixed gain for comparisons
  cfg.agc.initial_gain_db = 0.0;
  return cfg;
}

TEST(Cosim, MatchesSystemLevelGainOnTone) {
  const rf::DoubleConversionConfig rfc = quiet_rf();
  CosimConfig cc;
  cc.analog_oversample = 8;
  rf::DoubleConversionReceiver sys(rfc, dsp::Rng(1));
  CosimRfReceiver co(rfc, cc, dsp::Rng(1));

  rf::ToneTestConfig tc;
  tc.tone_hz = 2e6;
  tc.num_samples = 8192;
  tc.settle_samples = 4096;
  const double g_sys = rf::measure_gain_db(sys, tc, -50.0);
  const double g_co = rf::measure_gain_db(co, tc, -50.0);
  EXPECT_NEAR(g_sys, g_co, 0.5);
}

TEST(Cosim, NoiseFunctionsIgnoredByDefault) {
  rf::DoubleConversionConfig rfc;
  rfc.mixer2_dc_offset = {0.0, 0.0};
  rfc.noise_enabled = true;  // the design wants noise...
  CosimConfig cc;
  cc.analog_oversample = 4;
  cc.supports_noise_functions = false;  // ...but the AMS transient drops it
  CosimRfReceiver co(rfc, cc, dsp::Rng(2));
  dsp::CVec zeros(8192, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = co.process(zeros);
  EXPECT_LT(dsp::mean_power(y), 1e-25);

  // With the workaround enabled, the noise reappears.
  cc.supports_noise_functions = true;
  CosimRfReceiver fixed(rfc, cc, dsp::Rng(2));
  fixed.reset();
  const dsp::CVec y2 = fixed.process(zeros);
  EXPECT_GT(dsp::mean_power(
                std::span<const dsp::Cplx>(y2).subspan(4096)),
            1e-18);
}

TEST(Cosim, AnalogStepsCounted) {
  CosimConfig cc;
  cc.analog_oversample = 16;
  CosimRfReceiver co(quiet_rf(), cc, dsp::Rng(3));
  dsp::CVec in(100, dsp::Cplx{1e-4, 0.0});
  co.process(in);
  EXPECT_EQ(co.analog_steps(), 1600u);
  co.reset();
  EXPECT_EQ(co.analog_steps(), 0u);
}

TEST(Cosim, OutputLengthPreserved) {
  CosimConfig cc;
  cc.analog_oversample = 8;
  CosimRfReceiver co(quiet_rf(), cc, dsp::Rng(4));
  dsp::CVec in(333, dsp::Cplx{1e-4, 0.0});
  EXPECT_EQ(co.process(in).size(), 333u);
}

TEST(Cosim, RejectsZeroOversample) {
  CosimConfig cc;
  cc.analog_oversample = 0;
  EXPECT_THROW(CosimRfReceiver(quiet_rf(), cc, dsp::Rng(5)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::sim
