// The BER surrogate's pure model layer (sim/ber_surrogate.h): monotone
// log-domain interpolation, EESM reduction, curve coverage/merging, and
// the content-addressed store's exact round-trip guarantees — all without
// a WlanLink.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "sim/ber_surrogate.h"

namespace wlansim::sim {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-surrogate" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// monotone_interp
// ---------------------------------------------------------------------------

TEST(MonotoneInterp, ExactAtKnots) {
  const std::vector<double> xs{0.0, 1.0, 2.5, 4.0};
  const std::vector<double> ys{-1.0, -2.0, -4.5, -9.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(monotone_interp(xs, ys, xs[i]), ys[i]);
  }
}

TEST(MonotoneInterp, LinearDataReproducedExactly) {
  // Equal secants make every Fritsch–Butland tangent equal to the slope,
  // and a Hermite piece with endpoint slopes equal to the secant IS the
  // straight line.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 3.0, 1.0, -1.0};
  for (double x = 0.0; x <= 3.0; x += 0.125) {
    EXPECT_NEAR(monotone_interp(xs, ys, x), 5.0 - 2.0 * x, 1e-12);
  }
}

TEST(MonotoneInterp, MonotoneDataStaysMonotone) {
  // A BER-waterfall-like decade drop: the interpolant must never
  // oscillate, no matter how uneven the decay.
  const std::vector<double> xs{6.0, 7.0, 8.0, 9.0, 10.0};
  const std::vector<double> ys{std::log(1e-1), std::log(8e-2), std::log(1e-3),
                               std::log(8e-4), std::log(1e-6)};
  double prev = monotone_interp(xs, ys, 6.0);
  for (double x = 6.01; x <= 10.0; x += 0.01) {
    const double y = monotone_interp(xs, ys, x);
    EXPECT_LE(y, prev + 1e-12) << "non-monotone at x=" << x;
    prev = y;
  }
}

TEST(MonotoneInterp, NoOvershootBeyondBracketingKnots) {
  // Non-monotone data (a dip): each piece must stay inside the value range
  // of its bracketing knots — no cubic overshoot.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{0.0, -5.0, -4.9, 2.0};
  for (double x = 0.0; x <= 3.0; x += 0.01) {
    const double y = monotone_interp(xs, ys, x);
    const std::size_t i = x < 1.0 ? 0 : (x < 2.0 ? 1 : 2);
    EXPECT_GE(y, std::min(ys[i], ys[i + 1]) - 1e-12);
    EXPECT_LE(y, std::max(ys[i], ys[i + 1]) + 1e-12);
  }
}

TEST(MonotoneInterp, RejectsBadInput) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{0.0, 1.0};
  EXPECT_THROW(monotone_interp(xs, ys, -0.1), std::invalid_argument);
  EXPECT_THROW(monotone_interp(xs, ys, 1.1), std::invalid_argument);
  const std::vector<double> one{0.0};
  EXPECT_THROW(monotone_interp(one, one, 0.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// EESM
// ---------------------------------------------------------------------------

TEST(Eesm, FlatChannelIsIdentity) {
  const std::vector<double> flat(48, 12.0);
  for (double beta : {0.5, 1.0, 4.0, 20.0}) {
    EXPECT_NEAR(eesm_effective_snr_db(flat, beta), 12.0, 1e-9);
  }
}

TEST(Eesm, EffectiveSnrBetweenWorstAndMean) {
  const std::vector<double> snrs{3.0, 10.0, 15.0, 20.0};
  const double eff = eesm_effective_snr_db(snrs, 2.0);
  EXPECT_GT(eff, 3.0);   // better than the worst subcarrier alone
  EXPECT_LT(eff, 15.0);  // but pulled well below the strong ones
  // Smaller beta weights the faded subcarrier harder.
  EXPECT_LT(eesm_effective_snr_db(snrs, 0.5), eff);
  EXPECT_GT(eesm_effective_snr_db(snrs, 50.0), eff);
}

TEST(Eesm, SurvivesExtremeSnrSpread) {
  // log-sum-exp evaluation: one deeply faded + one huge subcarrier must
  // not underflow/overflow into nonsense.
  const std::vector<double> snrs{-40.0, 60.0};
  const double eff = eesm_effective_snr_db(snrs, 1.0);
  EXPECT_TRUE(std::isfinite(eff));
  EXPECT_LT(eff, 0.0);  // dominated by the faded carrier
}

TEST(Eesm, RejectsBadInput) {
  EXPECT_THROW(eesm_effective_snr_db({}, 1.0), std::invalid_argument);
  const std::vector<double> snrs{10.0};
  EXPECT_THROW(eesm_effective_snr_db(snrs, 0.0), std::invalid_argument);
  EXPECT_THROW(eesm_effective_snr_db(snrs, -1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CalibrationCurve
// ---------------------------------------------------------------------------

CalibrationPoint knot(double x, double ber, double ci = 0.2,
                      std::uint64_t bits = 100000) {
  CalibrationPoint p;
  p.x = x;
  p.ber = ber;
  p.ber_ci_rel = ci;
  p.per = std::min(1.0, ber * 50.0);
  p.evm = 0.3 - 0.01 * x;
  p.bits = bits;
  p.bit_errors = static_cast<std::uint64_t>(ber * static_cast<double>(bits));
  p.packets = 64;
  p.converged = true;
  return p;
}

CalibrationCurve small_curve() {
  CalibrationCurve c;
  c.fingerprint = std::string("\x00key-bytes\xff", 11);
  c.target_rel_ci = 0.25;
  c.confidence_z = 1.96;
  c.min_errors = 50;
  c.min_packets = 8;
  c.max_packets = 768;
  c.points = {knot(6.0, 1e-1), knot(7.0, 3e-2), knot(8.0, 8e-3),
              knot(9.0, 1e-3)};
  return c;
}

TEST(CalibrationCurve, CoversKnotsAndBracketedGaps) {
  const CalibrationCurve c = small_curve();
  EXPECT_TRUE(c.covers(6.0));
  EXPECT_TRUE(c.covers(9.0));
  EXPECT_TRUE(c.covers(7.5));
  EXPECT_FALSE(c.covers(5.9));
  EXPECT_FALSE(c.covers(9.1));
  EXPECT_FALSE(CalibrationCurve{}.covers(0.0));
}

TEST(CalibrationCurve, WideGapIsNotCovered) {
  CalibrationCurve c = small_curve();
  c.points.push_back(knot(15.0, 1e-6));  // 6 dB gap > max_gap 2.5
  EXPECT_TRUE(c.covers(15.0));           // the knot itself still answers
  EXPECT_FALSE(c.covers(12.0));          // but the gap does not
  EXPECT_FALSE(c.covers(9.5 + c.max_gap));
}

TEST(CalibrationCurve, KnotQueryReturnsStoredValuesExactly) {
  const CalibrationCurve c = small_curve();
  const SurrogateQuery q = c.query(7.0);
  EXPECT_EQ(q.ber, c.points[1].ber);
  EXPECT_EQ(q.per, c.points[1].per);
  EXPECT_EQ(q.evm, c.points[1].evm);
  EXPECT_EQ(q.ber_ci_rel, c.points[1].ber_ci_rel);
}

TEST(CalibrationCurve, InterpolationIsMonotoneBetweenKnots) {
  const CalibrationCurve c = small_curve();
  double prev = c.query(6.0).ber;
  for (double x = 6.05; x <= 9.0; x += 0.05) {
    const double ber = c.query(x).ber;
    EXPECT_LE(ber, prev * (1.0 + 1e-12)) << "BER rose at x=" << x;
    EXPECT_GT(ber, 0.0);
    prev = ber;
  }
}

TEST(CalibrationCurve, InterpolatedCiIsWorstOfBracket) {
  CalibrationCurve c = small_curve();
  c.points[1].ber_ci_rel = 0.05;
  c.points[2].ber_ci_rel = 0.31;
  EXPECT_DOUBLE_EQ(c.query(7.5).ber_ci_rel, 0.31);
}

TEST(CalibrationCurve, ZeroErrorKnotsInterpolateSafely) {
  CalibrationCurve c;
  c.points = {knot(10.0, 1e-4), knot(11.0, 0.0), knot(12.0, 0.0)};
  // Between two zero knots: genuinely error-free territory, report zero.
  EXPECT_EQ(c.query(11.5).ber, 0.0);
  // Between a real knot and a zero knot: the log-domain floor (half an
  // error over the knot's bits) keeps the interpolation finite + positive.
  const double mid = c.query(10.5).ber;
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1e-4);
}

TEST(CalibrationCurve, MergePointInsertsSortedAndReplacesNearDuplicates) {
  CalibrationCurve c = small_curve();
  c.merge_point(knot(6.5, 5e-2));
  ASSERT_EQ(c.points.size(), 5u);
  EXPECT_DOUBLE_EQ(c.points[1].x, 6.5);
  // Re-calibration at an existing knot replaces, never duplicates.
  c.merge_point(knot(7.0, 2.5e-2));
  ASSERT_EQ(c.points.size(), 5u);
  EXPECT_DOUBLE_EQ(c.points[2].ber, 2.5e-2);
  // Appending at the front/back keeps order.
  c.merge_point(knot(5.0, 2e-1));
  c.merge_point(knot(10.0, 1e-4));
  ASSERT_EQ(c.points.size(), 7u);
  EXPECT_DOUBLE_EQ(c.points.front().x, 5.0);
  EXPECT_DOUBLE_EQ(c.points.back().x, 10.0);
}

// ---------------------------------------------------------------------------
// Serialization + store
// ---------------------------------------------------------------------------

TEST(CurveSerialization, RoundTripIsBitExact) {
  CalibrationCurve c = small_curve();
  // Adversarial doubles: subnormal-adjacent, irrational, negative-zero
  // EVM, and an unconverged knot with an infinite CI.
  c.points[0].ber = 1.2345678901234567e-300;
  c.points[1].evm = -0.0;
  c.points[2].ber = std::acos(-1.0) * 1e-3;
  c.points[3].ber_ci_rel = std::numeric_limits<double>::infinity();
  c.points[3].converged = false;

  const auto parsed = parse_curve(serialize_curve(c), c.fingerprint);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->fingerprint, c.fingerprint);
  EXPECT_EQ(parsed->axis, c.axis);
  EXPECT_EQ(parsed->target_rel_ci, c.target_rel_ci);
  EXPECT_EQ(parsed->confidence_z, c.confidence_z);
  EXPECT_EQ(parsed->min_errors, c.min_errors);
  EXPECT_EQ(parsed->min_packets, c.min_packets);
  EXPECT_EQ(parsed->max_packets, c.max_packets);
  EXPECT_EQ(parsed->max_gap, c.max_gap);
  ASSERT_EQ(parsed->points.size(), c.points.size());
  for (std::size_t i = 0; i < c.points.size(); ++i) {
    // EXPECT_EQ, not NEAR: hex-float serialization must round-trip the
    // exact bit pattern (signed zero compares equal, which is fine — the
    // sign bit carries no meaning for these fields).
    EXPECT_EQ(parsed->points[i].x, c.points[i].x);
    EXPECT_EQ(parsed->points[i].ber, c.points[i].ber);
    EXPECT_EQ(parsed->points[i].ber_ci_rel, c.points[i].ber_ci_rel);
    EXPECT_EQ(parsed->points[i].per, c.points[i].per);
    EXPECT_EQ(parsed->points[i].evm, c.points[i].evm);
    EXPECT_EQ(parsed->points[i].bits, c.points[i].bits);
    EXPECT_EQ(parsed->points[i].bit_errors, c.points[i].bit_errors);
    EXPECT_EQ(parsed->points[i].packets, c.points[i].packets);
    EXPECT_EQ(parsed->points[i].converged, c.points[i].converged);
  }
}

TEST(CurveSerialization, RejectsCorruptInput) {
  const CalibrationCurve c = small_curve();
  const std::string text = serialize_curve(c);
  EXPECT_FALSE(parse_curve("", c.fingerprint).has_value());
  EXPECT_FALSE(parse_curve("not a calib file", c.fingerprint).has_value());
  // Truncated mid-points.
  EXPECT_FALSE(
      parse_curve(text.substr(0, text.size() / 2), c.fingerprint).has_value());
  // Fingerprint mismatch (the content-address collision guard).
  EXPECT_FALSE(parse_curve(text, "different-key").has_value());
  // Garbled number.
  std::string bad = text;
  bad.replace(bad.find("0x"), 2, "zz");
  EXPECT_FALSE(parse_curve(bad, c.fingerprint).has_value());
}

TEST(CalibrationStore, KeyIsStableAndContentAddressed) {
  // FNV-1a of "abc" — a fixed external test vector, so the on-disk layout
  // can never silently change.
  EXPECT_EQ(CalibrationStore::key_hex("abc"), "e71fa2190541574b");
  EXPECT_NE(CalibrationStore::key_hex("abd"), CalibrationStore::key_hex("abc"));
}

TEST(CalibrationStore, SaveLoadRoundTrip) {
  const CalibrationStore store(test_dir("roundtrip"));
  const CalibrationCurve c = small_curve();
  ASSERT_TRUE(store.save(c));
  const auto loaded = store.load(c.fingerprint);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->points.size(), c.points.size());
  EXPECT_EQ(loaded->points[2].ber, c.points[2].ber);
  // A different key is a miss, not the wrong curve.
  EXPECT_FALSE(store.load("some-other-config").has_value());
}

TEST(CalibrationStore, CorruptOrForeignFileReadsAsMiss) {
  const CalibrationStore store(test_dir("corrupt"));
  const CalibrationCurve c = small_curve();
  ASSERT_TRUE(store.save(c));

  {  // truncate the stored file
    std::ofstream f(store.path_for(c.fingerprint),
                    std::ios::binary | std::ios::trunc);
    f << "wlansim-calib v1\naxis snr";
  }
  EXPECT_FALSE(store.load(c.fingerprint).has_value());

  // A file hand-copied under the wrong hash name (simulated collision):
  // the embedded fingerprint does not match, so it must read as a miss.
  CalibrationCurve other = c;
  other.fingerprint = "other-config";
  std::ofstream(store.path_for(c.fingerprint), std::ios::binary)
      << serialize_curve(other);
  EXPECT_FALSE(store.load(c.fingerprint).has_value());
}

TEST(CalibrationStore, SaveFailureReturnsFalseNotThrow) {
  // Point the store at a path that cannot be a directory.
  const fs::path dir = test_dir("notadir");
  const fs::path file = dir / "occupied";
  std::ofstream(file) << "x";
  const CalibrationStore store(file / "sub");
  EXPECT_FALSE(store.save(small_curve()));
}

TEST(BerSurrogate, CachesLookupsUntilInvalidated) {
  BerSurrogate cache{CalibrationStore(test_dir("view"))};
  const CalibrationCurve c = small_curve();
  EXPECT_EQ(cache.lookup(c.fingerprint), nullptr);
  ASSERT_TRUE(cache.put(c));
  const CalibrationCurve* hit = cache.lookup(c.fingerprint);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->points.size(), c.points.size());

  // Deleting the backing file is NOT observed by the memory cache…
  fs::remove(cache.store().path_for(c.fingerprint));
  EXPECT_NE(cache.lookup(c.fingerprint), nullptr);
  // …until invalidate() drops it back to the (now empty) disk.
  cache.invalidate();
  EXPECT_EQ(cache.lookup(c.fingerprint), nullptr);
}

}  // namespace
}  // namespace wlansim::sim
