#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "sim/graph.h"
#include "sim/sweep.h"

namespace wlansim::sim {
namespace {

dsp::CVec ramp(std::size_t n) {
  dsp::CVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = dsp::Cplx{static_cast<double>(i), 0.0};
  return v;
}

TEST(Graph, SourceToSinkPassesAllSamples) {
  Graph g;
  auto* src = g.add<SourceNode>("src", ramp(1000));
  auto* sink = g.add<SinkNode>("sink");
  g.connect(src, sink);
  g.run();
  ASSERT_EQ(sink->data().size(), 1000u);
  for (std::size_t i = 0; i < 1000; ++i)
    EXPECT_DOUBLE_EQ(sink->data()[i].real(), static_cast<double>(i));
}

TEST(Graph, GainAndAddCombine) {
  Graph g;
  auto* a = g.add<SourceNode>("a", dsp::CVec(100, dsp::Cplx{1.0, 0.0}));
  auto* b = g.add<SourceNode>("b", dsp::CVec(100, dsp::Cplx{0.0, 2.0}));
  auto* ga = g.add<GainNode>("x3", dsp::Cplx{3.0, 0.0});
  auto* add = g.add<AddNode>("sum", 2);
  auto* sink = g.add<SinkNode>("sink");
  g.connect(a, ga);
  g.connect(ga, 0, add, 0);
  g.connect(b, 0, add, 1);
  g.connect(add, sink);
  g.run();
  ASSERT_EQ(sink->data().size(), 100u);
  EXPECT_DOUBLE_EQ(sink->data()[50].real(), 3.0);
  EXPECT_DOUBLE_EQ(sink->data()[50].imag(), 2.0);
}

TEST(Graph, InterpretedMatchesCompiled) {
  auto build = [](Graph& g, SinkNode** sink) {
    auto* src = g.add<SourceNode>("src", ramp(500));
    auto* gn = g.add<GainNode>("g", dsp::Cplx{0.5, 0.5});
    *sink = g.add<SinkNode>("sink");
    g.connect(src, gn);
    g.connect(gn, *sink);
  };
  Graph g1, g2;
  SinkNode *s1, *s2;
  build(g1, &s1);
  build(g2, &s2);
  g1.run(ExecutionMode::kCompiled);
  g2.run(ExecutionMode::kInterpreted);
  ASSERT_EQ(s1->data().size(), s2->data().size());
  for (std::size_t i = 0; i < s1->data().size(); ++i)
    EXPECT_EQ(s1->data()[i], s2->data()[i]);
}

TEST(Graph, UpsampleDownsampleRates) {
  Graph g;
  auto* src = g.add<SourceNode>("src", dsp::CVec(256, dsp::Cplx{1.0, 0.0}));
  auto* up = g.add<UpsampleNode>("up4", 4);
  auto* down = g.add<DecimateNode>("dec4", 4);
  auto* sink = g.add<SinkNode>("sink");
  g.connect(src, up);
  g.connect(up, down);
  g.connect(down, sink);
  g.run();
  EXPECT_EQ(sink->data().size(), 256u);
}

TEST(Graph, RateWeightedSourcesStayAligned) {
  // A 4x-rate interferer source summed with an upsampled branch.
  Graph g;
  auto* a = g.add<SourceNode>("wanted", dsp::CVec(100, dsp::Cplx{1.0, 0.0}));
  auto* jam = g.add<SourceNode>("jam", dsp::CVec(400, dsp::Cplx{0.0, 1.0}));
  jam->set_rate_weight(4);
  auto* up = g.add<UpsampleNode>("up4", 4);
  auto* add = g.add<AddNode>("sum", 2);
  auto* sink = g.add<SinkNode>("sink");
  g.connect(a, up);
  g.connect(up, 0, add, 0);
  g.connect(jam, 0, add, 1);
  g.connect(add, sink);
  g.run();
  EXPECT_EQ(sink->data().size(), 400u);
  // Every output sample carries the interferer's imaginary unit.
  for (const auto& v : sink->data()) EXPECT_DOUBLE_EQ(v.imag(), 1.0);
}

TEST(Graph, ProbeRecordsOnlyWhenSelected) {
  Graph g;
  auto* src = g.add<SourceNode>("src", ramp(64));
  auto* probe = g.add<ProbeNode>("probe");
  auto* sink = g.add<SinkNode>("sink");
  g.connect(src, probe);
  g.connect(probe, sink);
  probe->select(false);  // deselect to avoid "data overload" (paper §5.1)
  g.run();
  EXPECT_TRUE(probe->data().empty());
  EXPECT_EQ(sink->data().size(), 64u);  // pass-through unaffected
}

TEST(Graph, FanOutDuplicatesStream) {
  Graph g;
  auto* src = g.add<SourceNode>("src", ramp(32));
  auto* s1 = g.add<SinkNode>("s1");
  auto* s2 = g.add<SinkNode>("s2");
  g.connect(src, 0, s1, 0);
  g.connect(src, 0, s2, 0);
  g.run();
  EXPECT_EQ(s1->data(), s2->data());
}

TEST(Graph, DetectsWiringErrors) {
  Graph g;
  auto* src = g.add<SourceNode>("src", ramp(8));
  auto* add = g.add<AddNode>("sum", 2);
  auto* sink = g.add<SinkNode>("sink");
  g.connect(src, 0, add, 0);
  g.connect(add, sink);
  EXPECT_THROW(g.compile(), std::logic_error);  // add input 1 unconnected
}

TEST(Graph, RejectsDoubleConnection) {
  Graph g;
  auto* a = g.add<SourceNode>("a", ramp(8));
  auto* b = g.add<SourceNode>("b", ramp(8));
  auto* sink = g.add<SinkNode>("sink");
  g.connect(a, sink);
  EXPECT_THROW(g.connect(b, sink), std::invalid_argument);
}

TEST(Graph, RejectsForeignNode) {
  Graph g1, g2;
  auto* a = g1.add<SourceNode>("a", ramp(8));
  auto* sink = g2.add<SinkNode>("sink");
  EXPECT_THROW(g2.connect(a, sink), std::invalid_argument);
}

TEST(Graph, ResetAllowsRerun) {
  Graph g;
  auto* src = g.add<SourceNode>("src", ramp(100));
  auto* sink = g.add<SinkNode>("sink");
  g.connect(src, sink);
  g.run();
  const dsp::CVec first = sink->data();
  g.reset();
  g.run();
  EXPECT_EQ(sink->data(), first);
}

TEST(Sweep, LinspaceAndLogspace) {
  const auto lin = linspace(0.0, 1.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[2], 0.5);
  EXPECT_DOUBLE_EQ(lin[4], 1.0);
  const auto lg = logspace(1.0, 100.0, 3);
  EXPECT_NEAR(lg[1], 10.0, 1e-9);
  EXPECT_THROW(logspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Sweep, RunSweepCollectsRowsInOrder) {
  const auto res = run_sweep("x", {1.0, 2.0, 3.0}, [](double x) {
    return std::map<std::string, double>{{"sq", x * x}};
  });
  ASSERT_EQ(res.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(res.rows[2].results.at("sq"), 9.0);
  const auto col = res.column("sq");
  EXPECT_DOUBLE_EQ(col[1], 4.0);
  EXPECT_THROW(res.column("nope"), std::invalid_argument);
}

TEST(Sweep, TableAndCsvContainHeaderAndValues) {
  const auto res = run_sweep("p", {1.5}, [](double) {
    return std::map<std::string, double>{{"ber", 0.25}};
  });
  const std::string tbl = res.to_table();
  EXPECT_NE(tbl.find("p"), std::string::npos);
  EXPECT_NE(tbl.find("ber"), std::string::npos);
  const std::string csv = res.to_csv();
  EXPECT_NE(csv.find("p,ber"), std::string::npos);
  EXPECT_NE(csv.find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace wlansim::sim

namespace wlansim::sim {
namespace {

TEST(Graph, InterpretedMatchesCompiledAcrossRateChanges) {
  auto build = [](Graph& g, SinkNode** sink) {
    auto* src = g.add<SourceNode>("src", ramp(256));
    auto* up = g.add<UpsampleNode>("up3", 3);
    auto* gn = g.add<GainNode>("g", dsp::Cplx{0.25, -0.5});
    auto* down = g.add<DecimateNode>("dec3", 3);
    *sink = g.add<SinkNode>("sink");
    g.connect(src, up);
    g.connect(up, gn);
    g.connect(gn, down);
    g.connect(down, *sink);
  };
  Graph g1, g2;
  SinkNode *s1, *s2;
  build(g1, &s1);
  build(g2, &s2);
  g1.run(ExecutionMode::kCompiled, 64);
  g2.run(ExecutionMode::kInterpreted, 64);
  ASSERT_EQ(s1->data().size(), s2->data().size());
  for (std::size_t i = 0; i < s1->data().size(); ++i)
    EXPECT_NEAR(std::abs(s1->data()[i] - s2->data()[i]), 0.0, 1e-12) << i;
}

TEST(Graph, ChunkSizeDoesNotChangeResults) {
  auto run_with = [](std::size_t chunk) {
    Graph g;
    auto* src = g.add<SourceNode>("src", ramp(300));
    auto* up = g.add<UpsampleNode>("up2", 2);
    auto* sink = g.add<SinkNode>("sink");
    g.connect(src, up);
    g.connect(up, sink);
    g.run(ExecutionMode::kCompiled, chunk);
    return sink->data();
  };
  const dsp::CVec a = run_with(7);
  const dsp::CVec b = run_with(301);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12) << i;
}

}  // namespace
}  // namespace wlansim::sim
