// Wilson-interval math and the sequential stopping rule (sim/sweep.h) —
// the statistics the adaptive Monte-Carlo BER engine's determinism rests
// on, unit-tested without the link layer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/sweep.h"

namespace wlansim::sim {
namespace {

TEST(WilsonInterval, MatchesClosedForm) {
  // e=100 errors in n=1e5 trials at z=1.96: hand-evaluated Wilson terms.
  const double z = 1.96;
  const double n = 1e5, e = 100.0;
  const double p = e / n, z2 = z * z;
  const double expected =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / (1.0 + z2 / n);
  EXPECT_DOUBLE_EQ(wilson_halfwidth(100, 100000, z), expected);
  EXPECT_DOUBLE_EQ(wilson_rel_halfwidth(100, 100000, z), expected / p);
  // ~100 errors puts the relative half-width near z/sqrt(e) = 19.6 %.
  EXPECT_NEAR(wilson_rel_halfwidth(100, 100000, z), z / std::sqrt(e), 0.01);
}

TEST(WilsonInterval, EdgeCases) {
  EXPECT_TRUE(std::isinf(wilson_halfwidth(0, 0, 1.96)));
  EXPECT_TRUE(std::isinf(wilson_rel_halfwidth(0, 1000, 1.96)));
  // Zero errors still has a finite absolute half-width (unlike Wald).
  EXPECT_GT(wilson_halfwidth(0, 1000, 1.96), 0.0);
  EXPECT_TRUE(std::isfinite(wilson_halfwidth(0, 1000, 1.96)));
  // All-errors is symmetric with none.
  EXPECT_DOUBLE_EQ(wilson_halfwidth(1000, 1000, 1.96),
                   wilson_halfwidth(0, 1000, 1.96));
}

TEST(WilsonInterval, ZeroAndOneErrorBoundaryQuanta) {
  // The calibration store serializes unconverged knots whose relative CI
  // is literally infinite — pin down exactly when that happens at the
  // 8-packet quantum boundaries the adaptive engine stops on.
  const double z = 1.96;
  for (std::uint64_t bits : {8u * 480u, 16u * 480u, 1024u * 480u}) {
    SCOPED_TRACE("bits=" + std::to_string(bits));
    // Zero errors: rate estimate is 0, so the RELATIVE half-width is inf
    // at every sample size — no amount of clean data converges a rel-CI
    // target. (The surrogate relies on this: an inf ci_rel knot is marked
    // unconverged however many packets it absorbed.)
    EXPECT_TRUE(std::isinf(wilson_rel_halfwidth(0, bits, z)));
    // The FIRST error snaps it finite...
    const double rel1 = wilson_rel_halfwidth(1, bits, z);
    EXPECT_TRUE(std::isfinite(rel1));
    EXPECT_GT(rel1, 0.0);
    // ...but one error can never satisfy a practical target: the relative
    // width is z/sqrt(1)-ish regardless of how many bits diluted it.
    EXPECT_GT(rel1, 1.0);
  }
  // One error's rel half-width is nearly sample-size invariant (it is a
  // property of the error COUNT): the 8- and 1024-packet quanta agree to
  // a few percent.
  EXPECT_NEAR(wilson_rel_halfwidth(1, 8 * 480, z),
              wilson_rel_halfwidth(1, 1024 * 480, z),
              0.1 * wilson_rel_halfwidth(1, 1024 * 480, z));
}

TEST(StoppingRule, ZeroErrorsNeverMeetsAnHonestTarget) {
  // Even with min_errors disabled, a clean run must not "converge": the
  // infinite relative CI fails any positive target at any quantum.
  StoppingRule rule;
  rule.target_rel_ci = 0.25;
  rule.min_errors = 0;
  rule.min_packets = 8;
  rule.max_packets = 1u << 20;
  for (std::uint64_t packets : {8u, 64u, 65536u}) {
    SCOPED_TRACE("packets=" + std::to_string(packets));
    EXPECT_FALSE(stopping_rule_met(rule, packets, 0, packets * 480));
  }
  // The first error at the next quantum flips the CI finite; with a loose
  // enough target that single error is already decisive.
  StoppingRule loose = rule;
  loose.target_rel_ci = 3.0;  // rel CI of one error ~ 1.96
  EXPECT_FALSE(stopping_rule_met(loose, 8, 0, 8 * 480));
  EXPECT_TRUE(stopping_rule_met(loose, 16, 1, 16 * 480));
}

TEST(WilsonInterval, TightensWithMoreErrors) {
  // At a fixed error rate, more data means a tighter relative interval.
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t e : {10u, 40u, 160u, 640u}) {
    const double rel = wilson_rel_halfwidth(e, e * 1000, 1.96);
    EXPECT_LT(rel, prev);
    prev = rel;
  }
}

TEST(StoppingRule, FloorsAndTarget) {
  StoppingRule rule;
  rule.target_rel_ci = 0.25;
  rule.min_errors = 100;
  rule.min_packets = 8;
  rule.max_packets = 1000;

  // 100 errors at BER 1e-3: rel CI ~ 19.6 % <= 25 % -> met.
  EXPECT_TRUE(stopping_rule_met(rule, 100, 100, 100000));
  // Error floor binds even when the CI would pass.
  EXPECT_FALSE(stopping_rule_met(rule, 100, 99, 100000));
  // Packet floor binds.
  EXPECT_FALSE(stopping_rule_met(rule, 7, 100, 100000));
  // Not enough errors for the target: 10 errors -> rel CI ~ 62 %.
  EXPECT_FALSE(stopping_rule_met(rule, 100, 10, 100000));
}

TEST(StoppingRule, DisabledTargetNeverStops) {
  StoppingRule rule;
  rule.target_rel_ci = 0.0;  // fixed-budget mode
  rule.min_errors = 0;
  rule.min_packets = 0;
  EXPECT_FALSE(stopping_rule_met(rule, 1000000, 1000000, 10000000));
}

}  // namespace
}  // namespace wlansim::sim
