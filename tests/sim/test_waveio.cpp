#include "sim/waveio.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "dsp/spectrum.h"

namespace wlansim::sim {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

TEST(WaveIo, WaveformRoundTrip) {
  dsp::Rng rng(1);
  dsp::CVec wave(500);
  for (auto& v : wave) v = rng.cgaussian(1.0);

  const std::string path = temp_path("wave_roundtrip.csv");
  write_waveform_csv(path, wave, 20e6);
  double fs = 0.0;
  const dsp::CVec back = read_waveform_csv(path, &fs);
  ASSERT_EQ(back.size(), wave.size());
  EXPECT_NEAR(fs, 20e6, 1.0);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - wave[i]), 0.0, 1e-9) << i;
  }
  std::remove(path.c_str());
}

TEST(WaveIo, RejectsBadInputs) {
  dsp::CVec wave(4, dsp::Cplx{1.0, 0.0});
  EXPECT_THROW(write_waveform_csv(temp_path("x.csv"), wave, 0.0),
               std::invalid_argument);
  EXPECT_THROW(write_waveform_csv("/nonexistent_dir_xyz/w.csv", wave, 1e6),
               std::runtime_error);
  EXPECT_THROW(read_waveform_csv("/nonexistent_dir_xyz/w.csv"),
               std::runtime_error);
}

TEST(WaveIo, RejectsCorruptHeaderAndRows) {
  const std::string path = temp_path("corrupt.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("bogus header\n1,2,3\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_waveform_csv(path), std::runtime_error);
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("time_s,i,q\nnot-a-number,1,2\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_waveform_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(WaveIo, PsdCsvHasHeaderAndRows) {
  dsp::Rng rng(2);
  dsp::CVec wave(4096);
  for (auto& v : wave) v = rng.cgaussian(1.0);
  const dsp::PsdEstimate psd = dsp::welch_psd(wave, {.nfft = 256});
  const std::string path = temp_path("psd.csv");
  write_psd_csv(path, psd, 20e6);

  std::ifstream is(path);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "freq_hz,power_dbm");
  std::size_t rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, psd.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wlansim::sim
