// Equivalence of the O(N) sliding-window sync paths against their O(N*W)
// references across CFO, fading, low SNR, threshold edges, and the
// all-zero-lead case that exercises the drift guard (a slid power sum must
// collapse to the reference's exact 0 over zero windows, not drift to a
// tiny denominator).
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "phy80211a/preamble.h"
#include "phy80211a/sync.h"

namespace wlansim::phy {
namespace {

void expect_same_detection(std::span<const dsp::Cplx> sig,
                           double threshold = 0.6) {
  const auto fast = detect_packet(sig, threshold);
  const auto ref = detect_packet_reference(sig, threshold);
  ASSERT_EQ(fast.has_value(), ref.has_value())
      << "threshold " << threshold;
  if (fast) {
    EXPECT_EQ(fast->detect_index, ref->detect_index);
    // Same index => coarse_cfo runs the identical loop on both paths.
    EXPECT_EQ(fast->coarse_cfo_norm, ref->coarse_cfo_norm);
  }
}

void expect_same_lts(std::span<const dsp::Cplx> sig, std::size_t lo,
                     std::size_t hi) {
  const auto fast = locate_long_training(sig, lo, hi);
  const auto ref = locate_long_training_reference(sig, lo, hi);
  ASSERT_EQ(fast.has_value(), ref.has_value());
  if (fast) {
    EXPECT_EQ(*fast, *ref);
  }
}

/// Noise lead + preamble-plus-noise + noise-like payload.
dsp::CVec frame_signal(double noise_sigma, unsigned seed,
                       std::size_t lead = 400) {
  dsp::Rng rng(seed);
  const dsp::CVec pre = full_preamble();
  dsp::CVec sig;
  sig.reserve(lead + pre.size() + 1200);
  for (std::size_t i = 0; i < lead; ++i)
    sig.push_back(rng.cgaussian(noise_sigma));
  for (const auto& v : pre) sig.push_back(v + rng.cgaussian(noise_sigma));
  for (std::size_t i = 0; i < 1200; ++i)
    sig.push_back(rng.cgaussian(0.3) + rng.cgaussian(noise_sigma));
  return sig;
}

TEST(SyncFast, CleanPreamble) {
  const dsp::CVec sig = frame_signal(1e-3, 101);
  expect_same_detection(sig);
  const auto det = detect_packet(sig);
  ASSERT_TRUE(det.has_value());
  expect_same_lts(sig, det->detect_index, det->detect_index + 400);
}

TEST(SyncFast, CfoOffsets) {
  for (const double cfo : {-0.01, -0.003, 0.001, 0.004, 0.01}) {
    dsp::CVec sig = frame_signal(3e-3, 102);
    correct_cfo(sig, -cfo);  // impose e^{+j 2 pi cfo n}
    expect_same_detection(sig);
    const auto det = detect_packet(sig);
    ASSERT_TRUE(det.has_value()) << "cfo " << cfo;
    expect_same_lts(sig, det->detect_index, det->detect_index + 400);
  }
}

TEST(SyncFast, TwoTapFading) {
  const dsp::CVec x = frame_signal(3e-3, 103);
  dsp::CVec sig(x.size());
  for (std::size_t n = 0; n < x.size(); ++n) {
    sig[n] = x[n];
    if (n >= 3) sig[n] += dsp::Cplx{0.1, 0.35} * x[n - 3];
  }
  expect_same_detection(sig);
  const auto det = detect_packet(sig);
  ASSERT_TRUE(det.has_value());
  expect_same_lts(sig, det->detect_index, det->detect_index + 400);
}

TEST(SyncFast, LowSnr) {
  const dsp::CVec sig = frame_signal(0.25, 104);
  expect_same_detection(sig);
}

TEST(SyncFast, NoPacketPureNoise) {
  dsp::Rng rng(105);
  dsp::CVec sig(4000);
  for (auto& v : sig) v = rng.cgaussian(1.0);
  const auto ref = detect_packet_reference(sig);
  EXPECT_FALSE(ref.has_value());
  expect_same_detection(sig);
  expect_same_lts(sig, 0, sig.size());
}

TEST(SyncFast, ThresholdSweep) {
  // Edge cases around the plateau height: at high thresholds the run
  // condition starts failing at different plateau positions; the fast
  // path's decisions must track the reference at every setting.
  const dsp::CVec sig = frame_signal(0.08, 106);
  for (const double thr : {0.3, 0.5, 0.6, 0.75, 0.9, 0.97, 0.999})
    expect_same_detection(sig, thr);
}

TEST(SyncFast, ZeroPaddedLead) {
  // An exactly-zero lead: the reference computes p == 0 there and emits
  // m == 0; a naive sliding p could drift to a denormal-scale positive
  // value and blow the metric up. The drift guard must re-sum to exact 0.
  const dsp::CVec pre = full_preamble();
  dsp::Rng rng(107);
  dsp::CVec sig(700, dsp::Cplx{0.0, 0.0});
  for (const auto& v : pre) sig.push_back(v + rng.cgaussian(1e-3));
  for (std::size_t i = 0; i < 900; ++i) sig.push_back(rng.cgaussian(0.3));
  expect_same_detection(sig);
  const auto det = detect_packet(sig);
  ASSERT_TRUE(det.has_value());
  expect_same_lts(sig, det->detect_index, det->detect_index + 400);
  // Also exercise the LTS power slide across the zero lead itself.
  expect_same_lts(sig, 0, sig.size());
}

TEST(SyncFast, ShortInputs) {
  dsp::Rng rng(108);
  for (const std::size_t n : {0u, 10u, 48u, 49u, 80u}) {
    dsp::CVec sig(n);
    for (auto& v : sig) v = rng.cgaussian(1.0);
    expect_same_detection(sig);
    expect_same_lts(sig, 0, sig.size());
  }
}

}  // namespace
}  // namespace wlansim::phy
