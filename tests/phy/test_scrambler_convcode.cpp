#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "phy80211a/convcode.h"
#include "phy80211a/scrambler.h"

namespace wlansim::phy {
namespace {

TEST(Scrambler, RejectsZeroSeed) {
  EXPECT_THROW(Scrambler(0), std::invalid_argument);
}

TEST(Scrambler, KnownSequenceForAllOnesSeed) {
  // Std 802.11a 17.3.5.4: seed 1111111 generates the 127-bit sequence
  // starting 00001110 11110010 11001001 ...
  Scrambler s(0x7F);
  const int expected[32] = {0, 0, 0, 0, 1, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0,
                            1, 1, 0, 0, 1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 1, 0};
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(s.next_bit(), expected[i]) << "bit " << i;
  }
}

TEST(Scrambler, SequenceIs127Periodic) {
  Scrambler s(0x2B);
  Bits first(127), second(127);
  for (auto& b : first) b = s.next_bit();
  for (auto& b : second) b = s.next_bit();
  EXPECT_EQ(first, second);
}

TEST(Scrambler, ScrambleDescrambleRoundTrip) {
  dsp::Rng rng(1);
  Bits data(500);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  Bits scrambled = data;
  Scrambler tx(0x45);
  tx.process(scrambled);
  EXPECT_NE(scrambled, data);
  Scrambler rx(0x45);
  rx.process(scrambled);
  EXPECT_EQ(scrambled, data);
}

TEST(Scrambler, SeedRecoveryFromServiceBits) {
  for (int seed = 1; seed < 128; ++seed) {
    Bits service(7, 0);  // seven zero SERVICE bits
    Scrambler tx(static_cast<std::uint8_t>(seed));
    tx.process(service);
    EXPECT_EQ(recover_scrambler_seed(service), seed);
  }
}

TEST(ConvCode, EncodeDoublesLength) {
  Bits in(10, 1);
  EXPECT_EQ(convolutional_encode(in).size(), 20u);
}

TEST(ConvCode, KnownOutputForImpulse) {
  // Input 1 followed by zeros: output pairs follow the generator taps
  // g0 = 133o (1+D^2+D^3+D^5+D^6), g1 = 171o (1+D+D^2+D^3+D^6).
  Bits in = {1, 0, 0, 0, 0, 0, 0};
  const Bits out = convolutional_encode(in);
  const Bits expected = {1, 1,  /* t=0: both generators tap current bit   */
                         0, 1,  /* t=1: only g1 has D                     */
                         1, 1,  /* t=2: both have D^2                     */
                         1, 1,  /* t=3: both have D^3                     */
                         0, 0,  /* t=4: neither has D^4                   */
                         1, 0,  /* t=5: only g0 has D^5                   */
                         1, 1}; /* t=6: both have D^6                     */
  EXPECT_EQ(out, expected);
}

TEST(ConvCode, ViterbiDecodesCleanStream) {
  dsp::Rng rng(2);
  Bits info(200);
  for (auto& b : info) b = rng.bit() ? 1 : 0;
  for (int i = 0; i < 6; ++i) info.push_back(0);  // tail
  const Bits coded = convolutional_encode(info);
  const Bits decoded = viterbi_decode_hard(coded);
  EXPECT_EQ(decoded, info);
}

TEST(ConvCode, ViterbiCorrectsScatteredErrors) {
  dsp::Rng rng(3);
  Bits info(300);
  for (auto& b : info) b = rng.bit() ? 1 : 0;
  for (int i = 0; i < 6; ++i) info.push_back(0);
  Bits coded = convolutional_encode(info);
  // Flip well-separated bits (free distance 10 -> isolated errors are
  // always correctable).
  for (std::size_t i = 20; i + 40 < coded.size(); i += 40) coded[i] ^= 1;
  const Bits decoded = viterbi_decode_hard(coded);
  EXPECT_EQ(decoded, info);
}

TEST(ConvCode, SoftDecisionsOutperformErasures) {
  // A punctured position carries zero information; Viterbi must still
  // decode around it.
  dsp::Rng rng(4);
  Bits info(120);
  for (auto& b : info) b = rng.bit() ? 1 : 0;
  for (int i = 0; i < 6; ++i) info.push_back(0);
  const Bits coded = convolutional_encode(info);
  SoftBits soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = coded[i] ? -1.0 : 1.0;
  // Erase 10% of positions.
  for (std::size_t i = 0; i < soft.size(); i += 10) soft[i] = 0.0;
  EXPECT_EQ(viterbi_decode(soft), info);
}

TEST(ConvCode, PunctureRates) {
  Bits info(24, 0);
  const Bits coded = convolutional_encode(info);  // 48 bits
  EXPECT_EQ(puncture(coded, CodeRate::kR12).size(), 48u);
  EXPECT_EQ(puncture(coded, CodeRate::kR23).size(), 36u);
  EXPECT_EQ(puncture(coded, CodeRate::kR34).size(), 32u);
  EXPECT_EQ(punctured_length(24, CodeRate::kR12), 48u);
  EXPECT_EQ(punctured_length(24, CodeRate::kR23), 36u);
  EXPECT_EQ(punctured_length(24, CodeRate::kR34), 32u);
}

TEST(ConvCode, DepunctureInsertsZerosAtDroppedPositions) {
  SoftBits soft = {1, 2, 3, 4, 5, 6};  // two 2/3 periods (3 kept each)
  const SoftBits out = depuncture(soft, CodeRate::kR23);
  const SoftBits expected = {1, 2, 3, 0, 4, 5, 6, 0};
  EXPECT_EQ(out, expected);
}

TEST(ConvCode, PuncturedRoundTripAllRates) {
  dsp::Rng rng(5);
  for (CodeRate rate : {CodeRate::kR12, CodeRate::kR23, CodeRate::kR34}) {
    Bits info(12 * 30);  // multiple of all pattern periods
    for (auto& b : info) b = rng.bit() ? 1 : 0;
    for (int i = 0; i < 6; ++i) info.push_back(0);
    // Pad so punctured lengths are whole periods.
    while (info.size() % 12 != 0) info.push_back(0);
    const Bits sent = puncture(convolutional_encode(info), rate);
    SoftBits soft(sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
      soft[i] = sent[i] ? -1.0 : 1.0;
    const Bits decoded = viterbi_decode(depuncture(soft, rate));
    EXPECT_EQ(decoded, info) << static_cast<int>(rate);
  }
}

TEST(ConvCode, RejectsOddSoftLength) {
  EXPECT_THROW(viterbi_decode(SoftBits{1.0, 2.0, 3.0}), std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::phy

namespace wlansim::phy {
namespace {

TEST(ConvCode, NonTerminatedTracebackRecoversShortStream) {
  // Information stream whose tail is followed by random (non-zero) bits,
  // like the scrambled pad of a one-symbol DATA field: zero-state
  // traceback corrupts the final bits; best-state traceback must not.
  dsp::Rng rng(6);
  Bits info(24);
  for (auto& b : info) b = rng.bit() ? 1 : 0;
  for (int i = 0; i < 6; ++i) info.push_back(0);  // tail
  Bits padded = info;
  for (int i = 0; i < 6; ++i) padded.push_back(1);  // non-zero pad

  const Bits coded = convolutional_encode(padded);
  SoftBits soft(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    soft[i] = coded[i] ? -1.0 : 1.0;

  const Bits decoded = viterbi_decode(soft, /*terminated=*/false);
  for (std::size_t i = 0; i < info.size(); ++i) {
    EXPECT_EQ(decoded[i], padded[i]) << i;
  }
}

}  // namespace
}  // namespace wlansim::phy
