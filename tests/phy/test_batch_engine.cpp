// Equivalence suite for the batched OFDM symbol engine: the one-pass SoA
// TX/RX data pipeline (batch FFTs, fused interleave+map gather, demap
// scattered straight into decoder order) must be bit-identical to the
// retained per-symbol reference implementations, for every rate and under
// every impairment the receiver handles.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "channel/fading.h"
#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "phy80211a/interleaver.h"
#include "phy80211a/mapper.h"
#include "phy80211a/receiver.h"
#include "phy80211a/transmitter.h"

namespace wlansim::phy {
namespace {

// ---------------------------------------------------------------------------
// Interleaver tables vs the standard's formula (Std 802.11a 17.3.5.6).

TEST(BatchEngine, InterleaverTablesMatchStandardFormula) {
  for (std::size_t ri = 0; ri < kNumRates; ++ri) {
    const Rate r = static_cast<Rate>(ri);
    const RateParams& p = rate_params(r);
    const Interleaver& il = interleaver_for(r);
    ASSERT_EQ(il.block_size(), p.ncbps) << rate_name(r);

    const std::size_t s = std::max<std::size_t>(p.nbpsc / 2, 1);
    for (std::size_t k = 0; k < p.ncbps; ++k) {
      // Eq. 15: first permutation k -> i.
      const std::size_t i = (p.ncbps / 16) * (k % 16) + k / 16;
      // Eq. 16: second permutation i -> j.
      const std::size_t j =
          s * (i / s) + (i + p.ncbps - (16 * i) / p.ncbps) % s;
      ASSERT_EQ(il.fwd()[k], j) << rate_name(r) << " k=" << k;
      ASSERT_EQ(il.inv()[j], k) << rate_name(r) << " j=" << j;
    }

    // The process-wide table must be address-stable: batch RX captures
    // raw pointers into it.
    EXPECT_EQ(&interleaver_for(r), &il) << rate_name(r);
  }
}

// ---------------------------------------------------------------------------
// Mapper batch helpers vs the per-point reference entries.

TEST(BatchEngine, MapperBatchHelpersMatchReference) {
  dsp::Rng rng(41);
  // One rate per modulation covers all four demap tables.
  for (const Rate r : {Rate::kMbps6, Rate::kMbps12, Rate::kMbps24,
                       Rate::kMbps54}) {
    const RateParams& p = rate_params(r);
    const Mapper mapper(p.modulation);
    const Interleaver& il = interleaver_for(r);

    Bits bits(p.ncbps);
    for (auto& b : bits) b = rng.uniform() < 0.5 ? 0 : 1;

    // Fused interleave+map gather == map(interleave(bits)).
    const dsp::CVec want_pts = mapper.map(il.interleave(bits));
    dsp::CVec got_pts(kNumDataCarriers);
    mapper.map_permuted(bits.data(), il.inv().data(), kNumDataCarriers,
                        got_pts.data());
    ASSERT_EQ(want_pts.size(), got_pts.size());
    for (std::size_t i = 0; i < got_pts.size(); ++i) {
      EXPECT_EQ(got_pts[i].real(), want_pts[i].real()) << rate_name(r) << i;
      EXPECT_EQ(got_pts[i].imag(), want_pts[i].imag()) << rate_name(r) << i;
    }

    // Noisy received points with per-point CSI weights.
    dsp::CVec pts(kNumDataCarriers);
    std::vector<double> weights(kNumDataCarriers);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      pts[i] = want_pts[i] + rng.cgaussian(0.05);
      weights[i] = 0.25 + rng.uniform();
    }

    const SoftBits want_soft = mapper.demap_soft(pts, weights);
    ASSERT_EQ(want_soft.size(), p.ncbps);

    SoftBits got_into(p.ncbps);
    mapper.demap_soft_into(pts, weights, got_into.data());
    for (std::size_t j = 0; j < p.ncbps; ++j)
      EXPECT_EQ(got_into[j], want_soft[j]) << rate_name(r) << " j=" << j;

    // Fused demap+deinterleave scatter == deinterleave_soft(demap_soft).
    const SoftBits want_deint = il.deinterleave_soft(want_soft);
    SoftBits got_deint(p.ncbps);
    mapper.demap_soft_deinterleaved(pts, weights, il.inv().data(),
                                    got_deint.data());
    for (std::size_t j = 0; j < p.ncbps; ++j)
      EXPECT_EQ(got_deint[j], want_deint[j]) << rate_name(r) << " j=" << j;
  }
}

// ---------------------------------------------------------------------------
// Transmitter: batched modulate vs the per-symbol reference.

/// PSDU size putting `nsym` DATA symbols on the air at rate r (clamped to
/// the legal 1..4095 range).
std::size_t psdu_bytes_for_symbols(Rate r, std::size_t nsym) {
  const RateParams& p = rate_params(r);
  const std::size_t bits = nsym * p.ndbps;
  const std::size_t overhead = kServiceBits + kTailBits;
  if (bits <= overhead + 8) return 1;
  return std::min<std::size_t>((bits - overhead) / 8, 4095);
}

void expect_same_waveform(const dsp::CVec& a, const dsp::CVec& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].real(), b[i].real()) << what << " i=" << i;
    ASSERT_EQ(a[i].imag(), b[i].imag()) << what << " i=" << i;
  }
}

TEST(BatchEngine, TxModulateMatchesReferenceAllRates) {
  dsp::Rng rng(42);
  for (std::size_t ri = 0; ri < kNumRates; ++ri) {
    const Rate r = static_cast<Rate>(ri);
    for (const std::size_t bytes :
         {std::size_t{1}, psdu_bytes_for_symbols(r, 7), std::size_t{4095}}) {
      Transmitter tx;
      const Frame f{r, random_bytes(bytes, rng)};
      expect_same_waveform(tx.modulate(f), tx.modulate_reference(f),
                           rate_name(r).data());
    }
  }
}

TEST(BatchEngine, TxModulateMatchesReferenceWithWindowAndClipping) {
  dsp::Rng rng(43);
  for (Transmitter::Config cfg :
       {Transmitter::Config{.window_overlap = 6},
        Transmitter::Config{.clip_papr_db = 5.0},
        Transmitter::Config{.scrambler_seed = 0x31,
                            .output_power_dbm = -10.0,
                            .window_overlap = 4,
                            .clip_papr_db = 6.0}}) {
    Transmitter tx(cfg);
    const Frame f{Rate::kMbps36, random_bytes(300, rng)};
    expect_same_waveform(tx.modulate(f), tx.modulate_reference(f), "cfg");
  }
}

// ---------------------------------------------------------------------------
// Receiver: batched data path vs the per-symbol reference loop.

void expect_same_rx_result(const RxResult& a, const RxResult& b) {
  ASSERT_EQ(a.detected, b.detected);
  ASSERT_EQ(a.header_ok, b.header_ok);
  EXPECT_EQ(a.cfo_norm, b.cfo_norm);
  EXPECT_EQ(a.frame_start, b.frame_start);
  if (a.header_ok) {
    EXPECT_EQ(a.signal.rate, b.signal.rate);
    EXPECT_EQ(a.signal.length, b.signal.length);
  }
  EXPECT_EQ(a.psdu, b.psdu);
  ASSERT_EQ(a.data_points.size(), b.data_points.size());
  for (std::size_t s = 0; s < a.data_points.size(); ++s) {
    ASSERT_EQ(a.data_points[s].size(), b.data_points[s].size()) << s;
    for (std::size_t i = 0; i < a.data_points[s].size(); ++i) {
      ASSERT_EQ(a.data_points[s][i].real(), b.data_points[s][i].real())
          << "sym=" << s << " i=" << i;
      ASSERT_EQ(a.data_points[s][i].imag(), b.data_points[s][i].imag())
          << "sym=" << s << " i=" << i;
    }
  }
}

dsp::CVec padded(const dsp::CVec& frame, std::size_t lead, std::size_t tail) {
  dsp::CVec out(lead, dsp::Cplx{0.0, 0.0});
  out.insert(out.end(), frame.begin(), frame.end());
  out.insert(out.end(), tail, dsp::Cplx{0.0, 0.0});
  return out;
}

void expect_batched_matches_reference(const dsp::CVec& rx,
                                      Receiver::Config cfg) {
  cfg.batched_data_path = true;
  const Receiver batched(cfg);
  cfg.batched_data_path = false;
  const Receiver reference(cfg);
  expect_same_rx_result(batched.receive(rx), reference.receive(rx));
}

TEST(BatchEngine, RxMatchesReferenceAllRatesAwgn) {
  dsp::Rng rng(44);
  for (std::size_t ri = 0; ri < kNumRates; ++ri) {
    const Rate r = static_cast<Rate>(ri);
    Transmitter tx;
    dsp::CVec rx = padded(tx.modulate({r, random_bytes(200, rng)}), 250, 80);
    dsp::Rng noise(50 + ri);
    for (auto& v : rx) v += noise.cgaussian(1e-5);
    expect_batched_matches_reference(rx, {});
  }
}

TEST(BatchEngine, RxMatchesReferenceTrackingModes) {
  dsp::Rng rng(45);
  Transmitter tx;
  const dsp::CVec frame = tx.modulate({Rate::kMbps24, random_bytes(400, rng)});
  // A CFO residual makes the phase/timing trackers actually work.
  dsp::CVec rx = padded(dsp::frequency_shift(frame, 0.004), 300, 80);
  dsp::Rng noise(46);
  for (auto& v : rx) v += noise.cgaussian(1e-5);
  for (const bool phase : {false, true}) {
    for (const bool timing : {false, true}) {
      expect_batched_matches_reference(
          rx, {.track_phase = phase, .track_timing = timing});
    }
  }
}

TEST(BatchEngine, RxMatchesReferenceFadingAndInterferer) {
  dsp::Rng rng(47);
  Transmitter tx;
  const dsp::CVec frame = tx.modulate({Rate::kMbps12, random_bytes(250, rng)});

  channel::FadingConfig fcfg;
  fcfg.rms_delay_spread_s = 50e-9;
  dsp::Rng chan_rng(48);
  const channel::MultipathChannel chan(fcfg, chan_rng);
  dsp::CVec rx = padded(chan.apply(padded(frame, 300, 100)), 0, 0);

  // Weak in-band CW interferer plus thermal noise.
  dsp::Rng noise(49);
  const double amp = 3e-3;
  for (std::size_t i = 0; i < rx.size(); ++i) {
    const double ang = dsp::kTwoPi * 0.11 * static_cast<double>(i);
    rx[i] += amp * dsp::Cplx{std::cos(ang), std::sin(ang)};
    rx[i] += noise.cgaussian(1e-5);
  }
  expect_batched_matches_reference(rx, {});
  expect_batched_matches_reference(rx, {.chanest_smoothing = 3});
}

TEST(BatchEngine, RxMatchesReferencePayloadExtremes) {
  dsp::Rng rng(51);
  // Smallest legal PSDU (fewest DATA symbols) and the largest (4095 bytes).
  for (const auto& [rate, bytes] :
       {std::pair{Rate::kMbps6, std::size_t{1}},
        std::pair{Rate::kMbps54, std::size_t{4095}}}) {
    Transmitter tx;
    const dsp::CVec rx =
        padded(tx.modulate({rate, random_bytes(bytes, rng)}), 200, 60);
    expect_batched_matches_reference(rx, {});
  }
}

TEST(BatchEngine, RxMatchesReferenceOnTruncatedFrame) {
  dsp::Rng rng(52);
  Transmitter tx;
  const dsp::CVec frame = tx.modulate({Rate::kMbps6, random_bytes(120, rng)});
  // Cut the frame mid-DATA: both paths must bail at the same symbol with
  // header_ok=false and identical partial data_points.
  const std::size_t cut = kPreambleLen + kSymbolLen + 5 * kSymbolLen + 11;
  ASSERT_LT(cut, frame.size());
  const dsp::CVec rx =
      padded(dsp::CVec(frame.begin(), frame.begin() + cut), 220, 0);

  Receiver::Config cfg;
  cfg.batched_data_path = true;
  const Receiver batched(cfg);
  cfg.batched_data_path = false;
  const Receiver reference(cfg);
  const RxResult a = batched.receive(rx);
  const RxResult b = reference.receive(rx);
  EXPECT_FALSE(a.header_ok);
  EXPECT_TRUE(a.detected);
  expect_same_rx_result(a, b);
}

}  // namespace
}  // namespace wlansim::phy
