// The butterfly-ACS production decoder pinned against the retained
// straightforward reference decoder. The inputs are quantized to small
// dyadic rationals (multiples of 1/8, |v| <= 32) so every float metric sum
// in the production decoder is exact and the decisions must match the
// double-precision reference bit for bit.
#include <gtest/gtest.h>

#include <random>

#include "phy80211a/convcode.h"

namespace wlansim::phy {
namespace {

/// Uniform dyadic-rational LLR in [-32, 32] with step 1/8.
double quantized_llr(std::mt19937_64& gen) {
  std::uniform_int_distribution<int> d(-256, 256);
  return static_cast<double>(d(gen)) / 8.0;
}

SoftBits random_soft(std::size_t n_info, std::mt19937_64& gen) {
  SoftBits soft(2 * n_info);
  for (double& v : soft) v = quantized_llr(gen);
  return soft;
}

/// Noisy-but-quantized soft metrics for an actual codeword: a strong
/// correct component plus quantized perturbations, so the decoders face
/// realistic near-ties without leaving the exactness domain.
SoftBits codeword_soft(const Bits& coded, std::mt19937_64& gen) {
  SoftBits soft(coded.size());
  std::uniform_int_distribution<int> noise(-96, 96);  // +/-12 in 1/8 steps
  for (std::size_t i = 0; i < coded.size(); ++i) {
    const double sign = coded[i] ? -1.0 : 1.0;
    soft[i] = sign * 8.0 + static_cast<double>(noise(gen)) / 8.0;
  }
  return soft;
}

Bits random_info(std::size_t n, std::mt19937_64& gen) {
  Bits info(n);
  for (auto& b : info) b = static_cast<std::uint8_t>(gen() & 1u);
  return info;
}

TEST(ViterbiEquivalence, RandomSoftInputsTerminated) {
  std::mt19937_64 gen(0x5eed0001);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + (gen() % 300);
    const SoftBits soft = random_soft(n, gen);
    EXPECT_EQ(viterbi_decode(soft, true), viterbi_decode_reference(soft, true))
        << "trial " << trial << " n=" << n;
  }
}

TEST(ViterbiEquivalence, RandomSoftInputsUnterminated) {
  std::mt19937_64 gen(0x5eed0002);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + (gen() % 300);
    const SoftBits soft = random_soft(n, gen);
    EXPECT_EQ(viterbi_decode(soft, false),
              viterbi_decode_reference(soft, false))
        << "trial " << trial << " n=" << n;
  }
}

TEST(ViterbiEquivalence, PuncturedCodewordsAllRates) {
  std::mt19937_64 gen(0x5eed0003);
  const CodeRate rates[] = {CodeRate::kR12, CodeRate::kR23, CodeRate::kR34};
  for (CodeRate rate : rates) {
    for (int trial = 0; trial < 12; ++trial) {
      // Info length padded so the punctured length is pattern-aligned.
      std::size_t n = 48 + 12 * (gen() % 20);
      Bits info = random_info(n, gen);
      for (int t = 0; t < 6; ++t) info.push_back(0);  // tail
      const Bits coded = puncture(convolutional_encode(info), rate);
      SoftBits soft(coded.size());
      {
        const SoftBits s = codeword_soft(coded, gen);
        soft = s;
      }
      const SoftBits mother = depuncture(soft, rate);
      for (bool terminated : {true, false}) {
        EXPECT_EQ(viterbi_decode(mother, terminated),
                  viterbi_decode_reference(mother, terminated))
            << "rate " << static_cast<int>(rate) << " trial " << trial
            << " terminated=" << terminated;
      }
    }
  }
}

TEST(ViterbiEquivalence, DegenerateShortInputs) {
  std::mt19937_64 gen(0x5eed0004);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{5}, std::size_t{7}}) {
    for (int trial = 0; trial < 8; ++trial) {
      const SoftBits soft = random_soft(n, gen);
      for (bool terminated : {true, false}) {
        EXPECT_EQ(viterbi_decode(soft, terminated),
                  viterbi_decode_reference(soft, terminated))
            << "n=" << n << " terminated=" << terminated;
      }
    }
  }
}

TEST(ViterbiEquivalence, HardDecisionRoundTrip) {
  // End-to-end sanity: clean hard metrics decode back to the info bits.
  std::mt19937_64 gen(0x5eed0005);
  Bits info = random_info(120, gen);
  for (int t = 0; t < 6; ++t) info.push_back(0);
  const Bits coded = convolutional_encode(info);
  EXPECT_EQ(viterbi_decode_hard(coded, true), info);
}

}  // namespace
}  // namespace wlansim::phy
