#include <cmath>

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "phy80211a/ofdm.h"
#include "phy80211a/preamble.h"

namespace wlansim::phy {
namespace {

TEST(Ofdm, DataCarrierTableExcludesPilotsAndDc) {
  const auto& dc = data_carrier_indices();
  EXPECT_EQ(dc.size(), 48u);
  for (int k : dc) {
    EXPECT_NE(k, 0);
    EXPECT_NE(k, -21);
    EXPECT_NE(k, -7);
    EXPECT_NE(k, 7);
    EXPECT_NE(k, 21);
    EXPECT_GE(k, -26);
    EXPECT_LE(k, 26);
  }
}

TEST(Ofdm, CarrierToBinWrapsNegative) {
  EXPECT_EQ(carrier_to_bin(0), 0u);
  EXPECT_EQ(carrier_to_bin(1), 1u);
  EXPECT_EQ(carrier_to_bin(26), 26u);
  EXPECT_EQ(carrier_to_bin(-1), 63u);
  EXPECT_EQ(carrier_to_bin(-26), 38u);
  EXPECT_THROW(carrier_to_bin(40), std::invalid_argument);
}

TEST(Ofdm, ModDemodRoundTrip) {
  dsp::Rng rng(1);
  dsp::CVec data(kNumDataCarriers);
  for (auto& v : data) v = rng.cgaussian(1.0);
  const dsp::CVec sym = ofdm_modulate_symbol(data, 3);
  ASSERT_EQ(sym.size(), kSymbolLen);
  const DemodulatedSymbol dem = ofdm_demodulate_symbol(
      std::span<const dsp::Cplx>(sym).subspan(kCpLen, kNfft));
  for (std::size_t i = 0; i < kNumDataCarriers; ++i)
    EXPECT_NEAR(std::abs(dem.data[i] - data[i]), 0.0, 1e-10);
  // Pilots carry the polarity for symbol index 3 (p_3 = 1).
  const double pol = pilot_polarity(3);
  const auto& pv = pilot_base_values();
  for (std::size_t i = 0; i < kNumPilots; ++i)
    EXPECT_NEAR(std::abs(dem.pilots[i] - pol * pv[i]), 0.0, 1e-10);
}

TEST(Ofdm, CyclicPrefixIsTailCopy) {
  dsp::Rng rng(2);
  dsp::CVec data(kNumDataCarriers);
  for (auto& v : data) v = rng.cgaussian(1.0);
  const dsp::CVec sym = ofdm_modulate_symbol(data, 0);
  for (std::size_t i = 0; i < kCpLen; ++i) {
    EXPECT_NEAR(std::abs(sym[i] - sym[kNfft + i]), 0.0, 1e-12);
  }
}

TEST(Ofdm, PilotPolaritySequenceIs127Periodic) {
  for (std::size_t i = 0; i < 300; ++i) {
    EXPECT_EQ(pilot_polarity(i), pilot_polarity(i + 127));
    EXPECT_TRUE(pilot_polarity(i) == 1.0 || pilot_polarity(i) == -1.0);
  }
  // Std values: the sequence begins 1,1,1,1,-1,-1,-1,1.
  EXPECT_EQ(pilot_polarity(0), 1.0);
  EXPECT_EQ(pilot_polarity(4), -1.0);
  EXPECT_EQ(pilot_polarity(7), 1.0);
  // and ends with three -1.
  EXPECT_EQ(pilot_polarity(126), -1.0);
  EXPECT_EQ(pilot_polarity(125), -1.0);
}

TEST(Preamble, ShortPreambleIs16Periodic) {
  const dsp::CVec& s = short_preamble();
  ASSERT_EQ(s.size(), kShortPreambleLen);
  for (std::size_t i = 0; i + 16 < s.size(); ++i)
    EXPECT_NEAR(std::abs(s[i] - s[i + 16]), 0.0, 1e-12) << i;
}

TEST(Preamble, LongPreambleStructure) {
  const dsp::CVec& l = long_preamble();
  const dsp::CVec& sym = long_training_symbol();
  ASSERT_EQ(l.size(), kLongPreambleLen);
  // Guard is the tail of the training symbol.
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_NEAR(std::abs(l[i] - sym[32 + i]), 0.0, 1e-12);
  // Two identical copies follow.
  for (std::size_t i = 0; i < kNfft; ++i) {
    EXPECT_NEAR(std::abs(l[32 + i] - sym[i]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(l[96 + i] - sym[i]), 0.0, 1e-12);
  }
}

TEST(Preamble, LongTrainingSpectrumIsPlusMinusOne) {
  const dsp::CVec& sym = long_training_symbol();
  const dsp::CVec fd = dsp::fft(sym);
  const dsp::CVec& l = long_training_freq();
  for (int k = -26; k <= 26; ++k) {
    EXPECT_NEAR(std::abs(fd[carrier_to_bin(k)] - l[k + 26]), 0.0, 1e-10) << k;
  }
  // Unused bins are empty.
  for (int k = 27; k <= 37; ++k) {
    EXPECT_NEAR(std::abs(fd[static_cast<std::size_t>(k)]), 0.0, 1e-10);
  }
}

TEST(Preamble, ShortTrainingUsesEveryFourthCarrier) {
  const dsp::CVec& s = short_training_freq();
  int nonzero = 0;
  for (int k = -26; k <= 26; ++k) {
    const double mag = std::abs(s[k + 26]);
    if (mag > 1e-12) {
      EXPECT_EQ(k % 4, 0) << k;
      EXPECT_NEAR(mag, std::sqrt(13.0 / 6.0) * std::sqrt(2.0), 1e-9);
      ++nonzero;
    }
  }
  EXPECT_EQ(nonzero, 12);
}

TEST(Preamble, FullPreambleLength) {
  EXPECT_EQ(full_preamble().size(), kPreambleLen);
}

}  // namespace
}  // namespace wlansim::phy
