// Edge-case and robustness tests: extreme payload sizes, truncated
// buffers, corrupted streams — the receiver must degrade gracefully,
// never crash or return phantom successes.
#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "phy80211a/receiver.h"
#include "phy80211a/transmitter.h"

namespace wlansim::phy {
namespace {

dsp::CVec pad(const dsp::CVec& frame, std::size_t lead, std::size_t tail) {
  dsp::CVec out(lead, dsp::Cplx{0.0, 0.0});
  out.insert(out.end(), frame.begin(), frame.end());
  out.insert(out.end(), tail, dsp::Cplx{0.0, 0.0});
  return out;
}

class PayloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadSizes, RoundTripAtVariousSizes) {
  dsp::Rng rng(1000 + static_cast<int>(GetParam()));
  Transmitter tx;
  const Bytes payload = random_bytes(GetParam(), rng);
  const dsp::CVec rx_in = pad(tx.modulate({Rate::kMbps54, payload}), 200, 80);
  Receiver rx;
  const RxResult res = rx.receive(rx_in);
  ASSERT_TRUE(res.header_ok) << GetParam();
  EXPECT_EQ(res.psdu, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizes,
                         ::testing::Values(1, 2, 3, 17, 255, 1500, 4095));

TEST(EdgeCases, TransmitterRejectsInvalidPayloads) {
  Transmitter tx;
  EXPECT_THROW(tx.modulate({Rate::kMbps6, Bytes{}}), std::invalid_argument);
  EXPECT_THROW(tx.modulate({Rate::kMbps6, Bytes(4096, 0)}),
               std::invalid_argument);
}

TEST(EdgeCases, ReceiverHandlesEmptyAndTinyBuffers) {
  Receiver rx;
  EXPECT_FALSE(rx.receive(dsp::CVec{}).detected);
  EXPECT_FALSE(rx.receive(dsp::CVec(10, dsp::Cplx{1.0, 0.0})).detected);
  EXPECT_FALSE(rx.receive(dsp::CVec(100, dsp::Cplx{0.0, 0.0})).detected);
}

TEST(EdgeCases, TruncatedFrameFailsCleanly) {
  dsp::Rng rng(7);
  Transmitter tx;
  const Bytes payload = random_bytes(500, rng);
  dsp::CVec frame = tx.modulate({Rate::kMbps6, payload});
  // Cut the frame in the middle of the data field.
  frame.resize(frame.size() / 2);
  const dsp::CVec rx_in = pad(frame, 150, 20);
  Receiver rx;
  const RxResult res = rx.receive(rx_in);
  EXPECT_TRUE(res.detected);
  EXPECT_FALSE(res.header_ok);  // truncation detected, no phantom payload
}

TEST(EdgeCases, HeaderOnlyBufferFailsCleanly) {
  dsp::Rng rng(8);
  Transmitter tx;
  dsp::CVec frame = tx.modulate({Rate::kMbps6, random_bytes(100, rng)});
  frame.resize(kPreambleLen + kSymbolLen);  // preamble + SIGNAL only
  Receiver rx;
  const RxResult res = rx.receive(pad(frame, 100, 0));
  EXPECT_FALSE(res.header_ok);
}

TEST(EdgeCases, GarbageAfterValidPreambleFailsParity) {
  dsp::Rng rng(9);
  Transmitter tx;
  dsp::CVec frame = tx.modulate({Rate::kMbps24, random_bytes(60, rng)});
  // Replace everything after the preamble with noise of similar power.
  const double p = dsp::mean_power(frame);
  for (std::size_t i = kPreambleLen; i < frame.size(); ++i)
    frame[i] = rng.cgaussian(p);
  Receiver rx;
  const RxResult res = rx.receive(pad(frame, 120, 40));
  // SIGNAL parity + RATE validity make a phantom header very unlikely; if
  // one sneaks through, the decoded payload must not be reported as clean.
  if (res.header_ok) {
    EXPECT_NE(res.psdu.size(), 0u);
  }
  SUCCEED();
}

TEST(EdgeCases, BackToBackFramesFirstOneDecoded) {
  dsp::Rng rng(10);
  Transmitter tx;
  const Bytes p1 = random_bytes(80, rng);
  const Bytes p2 = random_bytes(80, rng);
  dsp::CVec burst = tx.modulate({Rate::kMbps12, p1});
  const dsp::CVec f2 = tx.modulate({Rate::kMbps12, p2});
  burst.insert(burst.end(), 40, dsp::Cplx{0.0, 0.0});
  burst.insert(burst.end(), f2.begin(), f2.end());
  Receiver rx;
  const RxResult res = rx.receive(pad(burst, 150, 60));
  ASSERT_TRUE(res.header_ok);
  EXPECT_EQ(res.psdu, p1);  // receives the first frame of the burst
}

TEST(EdgeCases, AllRatesWithOneBytePayload) {
  dsp::Rng rng(11);
  Transmitter tx;
  Receiver rx;
  for (Rate r : {Rate::kMbps6, Rate::kMbps9, Rate::kMbps12, Rate::kMbps18,
                 Rate::kMbps24, Rate::kMbps36, Rate::kMbps48, Rate::kMbps54}) {
    const Bytes payload = random_bytes(1, rng);
    const RxResult res = rx.receive(pad(tx.modulate({r, payload}), 120, 60));
    ASSERT_TRUE(res.header_ok) << rate_name(r);
    EXPECT_EQ(res.psdu, payload) << rate_name(r);
  }
}

TEST(EdgeCases, DcOffsetAtReceiverInputDoesNotFalseTrigger) {
  // A constant offset is lag-periodic at every lag; the detector must not
  // declare a frame (the regression behind the zero-IF false trigger).
  dsp::CVec dc(8000, dsp::Cplx{0.05, 0.03});
  Receiver rx;
  EXPECT_FALSE(rx.receive(dc).header_ok);
}

}  // namespace
}  // namespace wlansim::phy
