#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "phy80211a/interleaver.h"
#include "phy80211a/mapper.h"

namespace wlansim::phy {
namespace {

TEST(Interleaver, RejectsBadBlockSize) {
  EXPECT_THROW(Interleaver(50, 2), std::invalid_argument);
  Interleaver il(48, 1);
  EXPECT_THROW(il.interleave(Bits(47, 0)), std::invalid_argument);
}

TEST(Interleaver, PermutationIsBijective) {
  for (Rate r : {Rate::kMbps6, Rate::kMbps12, Rate::kMbps24, Rate::kMbps54}) {
    const Interleaver il(r);
    std::set<std::size_t> seen(il.fwd().begin(), il.fwd().end());
    EXPECT_EQ(seen.size(), il.block_size());
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), il.block_size() - 1);
  }
}

TEST(Interleaver, RoundTripAllRates) {
  dsp::Rng rng(1);
  for (Rate r : {Rate::kMbps6, Rate::kMbps9, Rate::kMbps12, Rate::kMbps18,
                 Rate::kMbps24, Rate::kMbps36, Rate::kMbps48, Rate::kMbps54}) {
    const Interleaver il(r);
    Bits in(il.block_size());
    for (auto& b : in) b = rng.bit() ? 1 : 0;
    EXPECT_EQ(il.deinterleave(il.interleave(in)), in) << rate_name(r);
  }
}

TEST(Interleaver, SoftDeinterleaveMatchesHard) {
  dsp::Rng rng(2);
  const Interleaver il(Rate::kMbps54);
  Bits in(il.block_size());
  for (auto& b : in) b = rng.bit() ? 1 : 0;
  const Bits inter = il.interleave(in);
  SoftBits soft(inter.size());
  for (std::size_t i = 0; i < inter.size(); ++i)
    soft[i] = inter[i] ? -1.0 : 1.0;
  const SoftBits desoft = il.deinterleave_soft(soft);
  for (std::size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(desoft[i] < 0.0, in[i] == 1);
}

TEST(Interleaver, KnownFirstPermutationProperty) {
  // Adjacent coded bits must land on far-apart positions: for NCBPS=48,
  // input bits k and k+1 map at least 3 positions apart (NCBPS/16 = 3).
  const Interleaver il(48, 1);
  for (std::size_t k = 0; k + 1 < 48; ++k) {
    const auto d = static_cast<std::ptrdiff_t>(il.fwd()[k + 1]) -
                   static_cast<std::ptrdiff_t>(il.fwd()[k]);
    EXPECT_GE(std::abs(d), 3);
  }
}

TEST(Mapper, AllConstellationsHaveUnitAveragePower) {
  dsp::Rng rng(3);
  for (Modulation m : {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
                       Modulation::kQam64}) {
    const Mapper mapper(m);
    const std::size_t nb = mapper.bits_per_point();
    double acc = 0.0;
    const std::size_t npts = std::size_t{1} << nb;
    for (std::size_t v = 0; v < npts; ++v) {
      Bits bits(nb);
      for (std::size_t i = 0; i < nb; ++i) bits[i] = (v >> i) & 1;
      acc += std::norm(mapper.map_point(bits));
    }
    EXPECT_NEAR(acc / static_cast<double>(npts), 1.0, 1e-12)
        << static_cast<int>(m);
  }
}

TEST(Mapper, BpskMapsSignCorrectly) {
  const Mapper m(Modulation::kBpsk);
  Bits zero = {0}, one = {1};
  EXPECT_NEAR(m.map_point(zero).real(), -1.0, 1e-12);
  EXPECT_NEAR(m.map_point(one).real(), 1.0, 1e-12);
  EXPECT_NEAR(m.map_point(one).imag(), 0.0, 1e-12);
}

TEST(Mapper, Qam16KnownPoints) {
  const Mapper m(Modulation::kQam16);
  const double s = 1.0 / std::sqrt(10.0);
  // Std Table 83: b0b1 = 00 -> I=-3, 01 -> -1, 11 -> +1, 10 -> +3.
  EXPECT_NEAR(m.map_point(Bits{0, 0, 0, 0}).real(), -3 * s, 1e-12);
  EXPECT_NEAR(m.map_point(Bits{0, 1, 0, 0}).real(), -1 * s, 1e-12);
  EXPECT_NEAR(m.map_point(Bits{1, 1, 0, 0}).real(), 1 * s, 1e-12);
  EXPECT_NEAR(m.map_point(Bits{1, 0, 0, 0}).real(), 3 * s, 1e-12);
  EXPECT_NEAR(m.map_point(Bits{0, 0, 1, 1}).imag(), 1 * s, 1e-12);
}

TEST(Mapper, HardDemapRoundTripAllPoints) {
  dsp::Rng rng(4);
  for (Modulation mod : {Modulation::kBpsk, Modulation::kQpsk,
                         Modulation::kQam16, Modulation::kQam64}) {
    const Mapper m(mod);
    const std::size_t nb = m.bits_per_point();
    for (std::size_t v = 0; v < (std::size_t{1} << nb); ++v) {
      Bits bits(nb);
      for (std::size_t i = 0; i < nb; ++i) bits[i] = (v >> i) & 1;
      const dsp::Cplx p = m.map_point(bits);
      EXPECT_EQ(m.demap_hard_point(p), bits);
      // Gray property: small noise flips at most the nearest decision.
      const dsp::Cplx noisy = p + rng.cgaussian(1e-6);
      EXPECT_EQ(m.demap_hard_point(noisy), bits);
    }
  }
}

TEST(Mapper, SoftDemapSignsMatchHardDecisions) {
  dsp::Rng rng(5);
  const Mapper m(Modulation::kQam64);
  for (int trial = 0; trial < 200; ++trial) {
    const dsp::Cplx y = rng.cgaussian(2.0);
    const Bits hard = m.demap_hard_point(y);
    const SoftBits soft = m.demap_soft_point(y, 1.0);
    for (std::size_t i = 0; i < hard.size(); ++i) {
      if (soft[i] != 0.0) {
        EXPECT_EQ(soft[i] < 0.0, hard[i] == 1) << "trial " << trial;
      }
    }
  }
}

TEST(Mapper, SoftWeightScalesLinearly) {
  const Mapper m(Modulation::kQpsk);
  const dsp::Cplx y{0.3, -0.5};
  const SoftBits a = m.demap_soft_point(y, 1.0);
  const SoftBits b = m.demap_soft_point(y, 2.5);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(b[i], 2.5 * a[i], 1e-12);
}

TEST(Mapper, GrayNeighborsDifferInOneBit) {
  const Mapper m(Modulation::kQam16);
  const double s = 1.0 / std::sqrt(10.0);
  const double levels[4] = {-3 * s, -1 * s, 1 * s, 3 * s};
  for (int i = 0; i + 1 < 4; ++i) {
    const Bits a = m.demap_hard_point({levels[i], levels[0]});
    const Bits b = m.demap_hard_point({levels[i + 1], levels[0]});
    int diff = 0;
    for (std::size_t k = 0; k < a.size(); ++k)
      if (a[k] != b[k]) ++diff;
    EXPECT_EQ(diff, 1) << "levels " << i << "," << i + 1;
  }
}

TEST(Mapper, NearestPointIsIdempotent) {
  dsp::Rng rng(6);
  const Mapper m(Modulation::kQam64);
  for (int i = 0; i < 100; ++i) {
    const dsp::Cplx y = rng.cgaussian(1.5);
    const dsp::Cplx p = m.nearest_point(y);
    EXPECT_NEAR(std::abs(m.nearest_point(p) - p), 0.0, 1e-12);
  }
}

TEST(Mapper, MapRejectsWrongBitCount) {
  const Mapper m(Modulation::kQam16);
  EXPECT_THROW(m.map(Bits(7, 0)), std::invalid_argument);
  EXPECT_THROW(m.map_point(Bits{0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::phy
