#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "dsp/spectrum.h"
#include "phy80211a/conformance.h"
#include "phy80211a/mpdu.h"
#include "phy80211a/receiver.h"
#include "phy80211a/transmitter.h"

namespace wlansim::phy {
namespace {

TEST(Crc32, KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(s), 9)),
            0xCBF43926u);
}

TEST(Crc32, EmptyAndSingleByte) {
  EXPECT_EQ(crc32({}), 0x00000000u);
  const std::uint8_t zero = 0x00;
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(&zero, 1)), 0xD202EF8Du);
}

TEST(MacAddress, FormattingAndFactories) {
  EXPECT_EQ(MacAddress::broadcast().to_string(), "ff:ff:ff:ff:ff:ff");
  const MacAddress a = MacAddress::from_id(0x1234);
  EXPECT_EQ(a.to_string(), "02:00:57:4c:12:34");
  EXPECT_EQ(MacAddress::from_id(7), MacAddress::from_id(7));
  EXPECT_FALSE(MacAddress::from_id(7) == MacAddress::from_id(8));
}

TEST(Mpdu, BuildParseRoundTrip) {
  dsp::Rng rng(1);
  MacHeader hdr;
  hdr.addr1 = MacAddress::from_id(1);
  hdr.addr2 = MacAddress::from_id(2);
  hdr.addr3 = MacAddress::from_id(3);
  hdr.set_sequence_number(1234);
  hdr.duration = 44;
  const Bytes payload = random_bytes(300, rng);

  const Bytes psdu = build_data_mpdu(hdr, payload);
  EXPECT_EQ(psdu.size(), kMacHeaderBytes + payload.size() + kFcsBytes);

  const auto parsed = parse_mpdu(psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.addr1, hdr.addr1);
  EXPECT_EQ(parsed->header.addr2, hdr.addr2);
  EXPECT_EQ(parsed->header.addr3, hdr.addr3);
  EXPECT_EQ(parsed->header.sequence_number(), 1234);
  EXPECT_EQ(parsed->header.duration, 44);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(Mpdu, FcsDetectsAnySingleBitFlip) {
  dsp::Rng rng(2);
  MacHeader hdr;
  const Bytes psdu = build_data_mpdu(hdr, random_bytes(50, rng));
  // Flip one bit at a spread of positions (header, payload, FCS itself).
  for (std::size_t pos : {0u, 10u, 30u, 60u, 77u}) {
    Bytes bad = psdu;
    bad[pos % bad.size()] ^= 0x10;
    EXPECT_FALSE(parse_mpdu(bad).has_value()) << pos;
  }
}

TEST(Mpdu, RejectsTruncatedFrames) {
  EXPECT_FALSE(parse_mpdu(Bytes(10, 0)).has_value());
  EXPECT_FALSE(parse_mpdu(Bytes{}).has_value());
}

TEST(Mpdu, SurvivesThePhyLoopback) {
  dsp::Rng rng(3);
  MacHeader hdr;
  hdr.addr1 = MacAddress::from_id(10);
  hdr.set_sequence_number(7);
  const Bytes payload = random_bytes(200, rng);
  const Bytes psdu = build_data_mpdu(hdr, payload);

  Transmitter tx;
  dsp::CVec wave = tx.modulate({Rate::kMbps36, psdu});
  dsp::CVec padded(200, dsp::Cplx{0.0, 0.0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 100, dsp::Cplx{0.0, 0.0});

  Receiver rx;
  const RxResult res = rx.receive(padded);
  ASSERT_TRUE(res.header_ok);
  const auto parsed = parse_mpdu(res.psdu);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload, payload);
  EXPECT_EQ(parsed->header.sequence_number(), 7);
}

TEST(SpectralMask, BreakpointsMatchStandard) {
  EXPECT_DOUBLE_EQ(spectral_mask_dbr(0.0), 0.0);
  EXPECT_DOUBLE_EQ(spectral_mask_dbr(9e6), 0.0);
  EXPECT_DOUBLE_EQ(spectral_mask_dbr(11e6), -20.0);
  EXPECT_DOUBLE_EQ(spectral_mask_dbr(20e6), -28.0);
  EXPECT_DOUBLE_EQ(spectral_mask_dbr(30e6), -40.0);
  EXPECT_DOUBLE_EQ(spectral_mask_dbr(50e6), -40.0);
  EXPECT_DOUBLE_EQ(spectral_mask_dbr(-11e6), -20.0);  // symmetric
  // Interpolation between breakpoints.
  EXPECT_NEAR(spectral_mask_dbr(10e6), -10.0, 1e-9);
  EXPECT_NEAR(spectral_mask_dbr(25e6), -34.0, 1e-9);
}

TEST(SpectralMask, CleanTransmitterPasses) {
  dsp::Rng rng(4);
  Transmitter tx;
  dsp::CVec wave;
  for (int i = 0; i < 4; ++i) {
    const dsp::CVec f = tx.modulate({Rate::kMbps24, random_bytes(300, rng)});
    wave.insert(wave.end(), f.begin(), f.end());
  }
  const dsp::CVec analog = dsp::upsample(wave, 4, 80.0);
  const dsp::PsdEstimate psd = dsp::welch_psd(analog, {.nfft = 2048});
  const auto res = check_spectral_mask(psd, 80e6, 9.2e6);
  EXPECT_TRUE(res.pass) << "margin " << res.worst_margin_db << " at "
                        << res.worst_offset_hz;
}

TEST(SensitivityTable, MonotoneAcrossRates) {
  double prev = -100.0;
  for (Rate r : {Rate::kMbps6, Rate::kMbps9, Rate::kMbps12, Rate::kMbps18,
                 Rate::kMbps24, Rate::kMbps36, Rate::kMbps48, Rate::kMbps54}) {
    const double s = required_sensitivity_dbm(r);
    EXPECT_GT(s, prev);  // higher rates need more power
    prev = s;
  }
  EXPECT_DOUBLE_EQ(required_sensitivity_dbm(Rate::kMbps6), -82.0);
  EXPECT_DOUBLE_EQ(required_sensitivity_dbm(Rate::kMbps54), -65.0);
}

TEST(TxWindowing, WindowedFrameStillDecodes) {
  dsp::Rng rng(5);
  Transmitter::Config cfg;
  cfg.window_overlap = 4;
  Transmitter tx(cfg);
  const Bytes payload = random_bytes(150, rng);
  dsp::CVec wave = tx.modulate({Rate::kMbps54, payload});
  dsp::CVec padded(150, dsp::Cplx{0.0, 0.0});
  padded.insert(padded.end(), wave.begin(), wave.end());
  padded.insert(padded.end(), 100, dsp::Cplx{0.0, 0.0});

  Receiver rx;
  const RxResult res = rx.receive(padded);
  ASSERT_TRUE(res.header_ok);
  EXPECT_EQ(res.psdu, payload);
}

TEST(TxWindowing, ReducesBandEdgeShoulder) {
  auto shoulder = [](std::size_t w) {
    dsp::Rng rng(6);
    Transmitter::Config cfg;
    cfg.window_overlap = w;
    Transmitter tx(cfg);
    dsp::CVec wave;
    for (int i = 0; i < 4; ++i) {
      const dsp::CVec f = tx.modulate({Rate::kMbps54, random_bytes(300, rng)});
      wave.insert(wave.end(), f.begin(), f.end());
    }
    const dsp::PsdEstimate psd = dsp::welch_psd(wave, {.nfft = 1024});
    const double in_band = psd.band_power(0.0, 16e6 / 20e6);
    const double shoulder = psd.band_power(9.7e6 / 20e6, 0.4e6 / 20e6);
    return dsp::to_db(shoulder / in_band);
  };
  EXPECT_LT(shoulder(4), shoulder(0) - 2.0);
}

TEST(TxWindowing, RejectsOversizeOverlap) {
  Transmitter::Config cfg;
  cfg.window_overlap = 8;  // half the CP: too large
  Transmitter tx(cfg);
  dsp::Rng rng(7);
  EXPECT_THROW(tx.modulate({Rate::kMbps6, random_bytes(10, rng)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::phy
