// End-to-end PHY tests: SIGNAL field, synchronization, and full TX -> RX
// loopback over clean and impaired channels.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "phy80211a/measure.h"
#include "phy80211a/receiver.h"
#include "phy80211a/signal_field.h"
#include "phy80211a/sync.h"
#include "phy80211a/transmitter.h"

namespace wlansim::phy {
namespace {

dsp::CVec with_padding(const dsp::CVec& frame, std::size_t lead,
                       std::size_t tail, dsp::Rng* noise_rng = nullptr,
                       double noise_var = 0.0) {
  dsp::CVec out;
  out.reserve(lead + frame.size() + tail);
  out.insert(out.end(), lead, dsp::Cplx{0.0, 0.0});
  out.insert(out.end(), frame.begin(), frame.end());
  out.insert(out.end(), tail, dsp::Cplx{0.0, 0.0});
  if (noise_rng != nullptr && noise_var > 0.0) {
    for (auto& v : out) v += noise_rng->cgaussian(noise_var);
  }
  return out;
}

TEST(SignalField, BitLayoutAndParity) {
  const Bits b = signal_field_bits({Rate::kMbps36, 100});
  ASSERT_EQ(b.size(), 24u);
  // RATE bits for 36 Mbps = 1011.
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 0);
  EXPECT_EQ(b[2], 1);
  EXPECT_EQ(b[3], 1);
  EXPECT_EQ(b[4], 0);  // reserved
  // LENGTH = 100 = 0b000001100100, LSB first.
  EXPECT_EQ(b[5], 0);
  EXPECT_EQ(b[6], 0);
  EXPECT_EQ(b[7], 1);
  EXPECT_EQ(b[8], 0);
  EXPECT_EQ(b[9], 0);
  EXPECT_EQ(b[10], 1);
  EXPECT_EQ(b[11], 1);
  // Tail must be zero.
  for (int i = 18; i < 24; ++i) EXPECT_EQ(b[i], 0);
  // Even parity over the first 18 bits.
  int ones = 0;
  for (int i = 0; i < 18; ++i) ones += b[i];
  EXPECT_EQ(ones % 2, 0);
}

TEST(SignalField, ParseRejectsCorruption) {
  Bits b = signal_field_bits({Rate::kMbps12, 256});
  auto ok = parse_signal_field(b);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->rate, Rate::kMbps12);
  EXPECT_EQ(ok->length, 256u);

  Bits bad = b;
  bad[6] ^= 1;  // flip a LENGTH bit -> parity fails
  EXPECT_FALSE(parse_signal_field(bad).has_value());
}

TEST(SignalField, AllRatesRoundTrip) {
  for (Rate r : {Rate::kMbps6, Rate::kMbps9, Rate::kMbps12, Rate::kMbps18,
                 Rate::kMbps24, Rate::kMbps36, Rate::kMbps48, Rate::kMbps54}) {
    const auto parsed = parse_signal_field(signal_field_bits({r, 1500}));
    ASSERT_TRUE(parsed.has_value()) << rate_name(r);
    EXPECT_EQ(parsed->rate, r);
    EXPECT_EQ(parsed->length, 1500u);
  }
}

TEST(Sync, DetectsFrameNearTrueStart) {
  dsp::Rng rng(1);
  Transmitter tx;
  const dsp::CVec frame = tx.modulate({Rate::kMbps6, random_bytes(50, rng)});
  const std::size_t lead = 500;
  dsp::Rng noise(2);
  const dsp::CVec rx = with_padding(frame, lead, 100, &noise, 1e-4);
  const auto det = detect_packet(rx);
  ASSERT_TRUE(det.has_value());
  EXPECT_NEAR(static_cast<double>(det->detect_index),
              static_cast<double>(lead), 24.0);
}

TEST(Sync, NoDetectionOnPureNoise) {
  dsp::Rng rng(3);
  dsp::CVec noise(4000);
  for (auto& v : noise) v = rng.cgaussian(1.0);
  EXPECT_FALSE(detect_packet(noise).has_value());
}

TEST(Sync, CfoEstimateAccuracy) {
  dsp::Rng rng(4);
  Transmitter tx;
  const dsp::CVec frame = tx.modulate({Rate::kMbps6, random_bytes(40, rng)});
  const double cfo_true = 0.004;  // 80 kHz at 20 Msps
  dsp::CVec shifted = dsp::frequency_shift(frame, cfo_true);
  const dsp::CVec rx = with_padding(shifted, 200, 50);
  const double est = coarse_cfo(rx, 210);
  EXPECT_NEAR(est, cfo_true, 2e-4);
}

TEST(Sync, LocateLongTrainingExact) {
  dsp::Rng rng(5);
  Transmitter tx;
  const dsp::CVec frame = tx.modulate({Rate::kMbps6, random_bytes(40, rng)});
  const std::size_t lead = 333;
  const dsp::CVec rx = with_padding(frame, lead, 50);
  // True LTS (first 64-sample symbol) starts at lead + 160 + 32.
  const auto lts = locate_long_training(rx, lead, lead + 400);
  ASSERT_TRUE(lts.has_value());
  EXPECT_EQ(*lts, lead + 192);
}

class LoopbackAllRates : public ::testing::TestWithParam<Rate> {};

TEST_P(LoopbackAllRates, CleanChannelDecodesPerfectly) {
  dsp::Rng rng(42 + static_cast<int>(GetParam()));
  Transmitter tx;
  const Bytes payload = random_bytes(200, rng);
  const dsp::CVec frame = tx.modulate({GetParam(), payload});
  const dsp::CVec rx = with_padding(frame, 300, 100);

  Receiver receiver;
  const RxResult res = receiver.receive(rx);
  ASSERT_TRUE(res.detected) << rate_name(GetParam());
  ASSERT_TRUE(res.header_ok) << rate_name(GetParam());
  EXPECT_EQ(res.signal.rate, GetParam());
  EXPECT_EQ(res.signal.length, payload.size());
  EXPECT_EQ(res.psdu, payload) << rate_name(GetParam());
}

TEST_P(LoopbackAllRates, ModerateNoiseStillDecodes) {
  dsp::Rng rng(100 + static_cast<int>(GetParam()));
  Transmitter tx({.scrambler_seed = 0x31, .output_power_dbm = 0.0});
  const Bytes payload = random_bytes(100, rng);
  const dsp::CVec frame = tx.modulate({GetParam(), payload});
  // 30 dB SNR: comfortably above the requirement of every rate.
  dsp::Rng noise(7);
  const dsp::CVec rx =
      with_padding(frame, 250, 80, &noise, dsp::dbm_to_watts(0.0) * 1e-3);

  Receiver receiver;
  const RxResult res = receiver.receive(rx);
  ASSERT_TRUE(res.header_ok) << rate_name(GetParam());
  EXPECT_EQ(res.psdu, payload) << rate_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRates, LoopbackAllRates,
                         ::testing::Values(Rate::kMbps6, Rate::kMbps9,
                                           Rate::kMbps12, Rate::kMbps18,
                                           Rate::kMbps24, Rate::kMbps36,
                                           Rate::kMbps48, Rate::kMbps54));

TEST(Loopback, SurvivesCarrierFrequencyOffset) {
  dsp::Rng rng(9);
  Transmitter tx;
  const Bytes payload = random_bytes(150, rng);
  const dsp::CVec frame = tx.modulate({Rate::kMbps24, payload});
  // 802.11a worst case: +/-40 ppm at 5.2 GHz ~ 208 kHz ~ 0.0104 cyc/sample.
  dsp::CVec shifted = dsp::frequency_shift(frame, 0.008);
  dsp::Rng noise(10);
  // Signal power is 1 mW; 1e-6 noise variance puts SNR at 30 dB.
  const dsp::CVec rx = with_padding(shifted, 400, 100, &noise, 1e-6);

  Receiver receiver;
  const RxResult res = receiver.receive(rx);
  ASSERT_TRUE(res.header_ok);
  EXPECT_EQ(res.psdu, payload);
  EXPECT_NEAR(res.cfo_norm, 0.008, 5e-4);
}

TEST(Loopback, SurvivesFlatPhaseRotationAndGain) {
  dsp::Rng rng(11);
  Transmitter tx;
  const Bytes payload = random_bytes(80, rng);
  dsp::CVec frame = tx.modulate({Rate::kMbps54, payload});
  const dsp::Cplx h = 0.4 * dsp::Cplx{std::cos(2.1), std::sin(2.1)};
  for (auto& v : frame) v *= h;
  const dsp::CVec rx = with_padding(frame, 120, 60);

  Receiver receiver;
  const RxResult res = receiver.receive(rx);
  ASSERT_TRUE(res.header_ok);
  EXPECT_EQ(res.psdu, payload);
}

TEST(Loopback, GenieTimingReceiveAt) {
  dsp::Rng rng(12);
  Transmitter tx;
  const Bytes payload = random_bytes(64, rng);
  const dsp::CVec frame = tx.modulate({Rate::kMbps36, payload});
  const dsp::CVec rx = with_padding(frame, 777, 50);

  Receiver receiver;
  const RxResult res = receiver.receive_at(rx, 777);
  ASSERT_TRUE(res.header_ok);
  EXPECT_EQ(res.psdu, payload);
  EXPECT_EQ(res.frame_start, 777u);
}

TEST(Loopback, EvmNearZeroOnCleanChannel) {
  dsp::Rng rng(13);
  Transmitter tx;
  const Frame f{Rate::kMbps54, random_bytes(120, rng)};
  const dsp::CVec frame = tx.modulate(f);
  const dsp::CVec rx = with_padding(frame, 100, 50);

  Receiver receiver;
  const RxResult res = receiver.receive(rx);
  ASSERT_TRUE(res.header_ok);

  // Reference points from the transmitter itself.
  const auto ref = tx.data_symbol_points(f);
  ASSERT_EQ(ref.size(), res.data_points.size());
  // The receiver sees the frame after global power normalization; rescale
  // both to unit average before comparing.
  EvmCounter evm;
  for (std::size_t s = 0; s < ref.size(); ++s) {
    dsp::CVec rx_pts = res.data_points[s];
    const double g = std::sqrt(dsp::mean_power(ref[s]) / dsp::mean_power(rx_pts));
    for (auto& v : rx_pts) v *= g;
    evm.add(rx_pts, ref[s]);
  }
  EXPECT_LT(evm.evm_percent(), 1.0);
}

TEST(Loopback, EvmTracksSnr) {
  dsp::Rng rng(14);
  Transmitter tx;
  const Frame f{Rate::kMbps54, random_bytes(120, rng)};
  const dsp::CVec frame = tx.modulate(f);

  double last_evm = 0.0;
  for (double nv : {1e-4, 1e-3, 1e-2}) {
    dsp::Rng noise(20);
    const dsp::CVec rx = with_padding(frame, 100, 50, &noise, nv);
    Receiver receiver;
    const RxResult res = receiver.receive(rx);
    if (!res.header_ok) continue;
    EvmCounter evm;
    for (const auto& pts : res.data_points)
      evm.add_decision_directed(pts, Modulation::kQam64);
    EXPECT_GT(evm.evm_rms(), last_evm);
    last_evm = evm.evm_rms();
  }
  EXPECT_GT(last_evm, 0.0);
}

TEST(BerCounter, CountsByteDifferences) {
  BerCounter c;
  const Bytes tx = {0xFF, 0x00, 0xAA};
  const Bytes rx = {0xFE, 0x00, 0xAA};  // one bit differs
  c.add_packet(tx, rx, true);
  EXPECT_EQ(c.bit_errors(), 1u);
  EXPECT_EQ(c.bits_total(), 24u);
  EXPECT_EQ(c.packet_errors(), 1u);
  EXPECT_NEAR(c.ber(), 1.0 / 24.0, 1e-12);
}

TEST(BerCounter, LostPacketCountsHalfBits) {
  BerCounter c;
  c.add_lost_packet(10);
  EXPECT_EQ(c.bits_total(), 80u);
  EXPECT_EQ(c.bit_errors(), 40u);
  EXPECT_NEAR(c.ber(), 0.5, 1e-12);
  EXPECT_NEAR(c.per(), 1.0, 1e-12);
}

}  // namespace
}  // namespace wlansim::phy

namespace wlansim::phy {
namespace {

TEST(Papr, ConstantEnvelopeIsZeroDb) {
  dsp::CVec x(1000, dsp::Cplx{0.7, 0.7});
  EXPECT_NEAR(papr_db(x), 0.0, 1e-9);
}

TEST(Papr, SingleSpikeDominates) {
  dsp::CVec x(100, dsp::Cplx{1.0, 0.0});
  x[50] = {10.0, 0.0};
  // mean = (99 + 100)/100 = 1.99, peak = 100 -> ~17 dB.
  EXPECT_NEAR(papr_db(x), 10.0 * std::log10(100.0 / 1.99), 1e-6);
}

TEST(Papr, CcdfIsMonotoneNonIncreasing) {
  dsp::Rng rng(5);
  dsp::CVec x(20000);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const std::vector<double> th = {0, 2, 4, 6, 8, 10};
  const auto ccdf = papr_ccdf(x, th);
  for (std::size_t i = 1; i < ccdf.size(); ++i)
    EXPECT_LE(ccdf[i], ccdf[i - 1]) << i;
  // Complex Gaussian: P(|x|^2 > mean) = 1/e.
  EXPECT_NEAR(ccdf[0], std::exp(-1.0), 0.02);
}

TEST(Papr, ClippedTransmitterRespectsThreshold) {
  dsp::Rng rng(6);
  Transmitter::Config cfg;
  cfg.clip_papr_db = 5.0;
  Transmitter tx(cfg);
  const dsp::CVec w = tx.modulate({Rate::kMbps54, random_bytes(400, rng)});
  // Post-normalization peaks sit at (or just under) the clip threshold.
  EXPECT_LE(papr_db(w), 5.3);
  // And the clipped frame still decodes.
  dsp::CVec padded(150, dsp::Cplx{0.0, 0.0});
  padded.insert(padded.end(), w.begin(), w.end());
  padded.insert(padded.end(), 80, dsp::Cplx{0.0, 0.0});
  Receiver rx;
  EXPECT_TRUE(rx.receive(padded).header_ok);
}

}  // namespace
}  // namespace wlansim::phy
