#include "phy80211a/equalizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "phy80211a/measure.h"
#include "phy80211a/preamble.h"

namespace wlansim::phy {
namespace {

TEST(ChannelEstimate, RecoversFlatGainFromCleanLts) {
  const dsp::Cplx h{0.7, -0.4};
  dsp::CVec lts;
  const dsp::CVec& sym = long_training_symbol();
  for (int rep = 0; rep < 2; ++rep)
    for (const auto& v : sym) lts.push_back(h * v);
  const ChannelEstimate est = estimate_channel(lts);
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(est.at_carrier(k) - h), 0.0, 1e-10) << k;
  }
}

TEST(ChannelEstimate, AveragesTheTwoSymbols) {
  // Noise on one copy is halved in power by averaging with the other.
  dsp::Rng rng(1);
  const dsp::CVec& sym = long_training_symbol();
  dsp::CVec lts(sym.begin(), sym.end());
  lts.insert(lts.end(), sym.begin(), sym.end());
  for (std::size_t i = 0; i < 64; ++i) lts[i] += rng.cgaussian(0.01);
  const ChannelEstimate est = estimate_channel(lts);
  double err = 0.0;
  int n = 0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    err += std::norm(est.at_carrier(k) - dsp::Cplx{1.0, 0.0});
    ++n;
  }
  // Time noise of variance v on one 64-sample copy appears per FFT bin
  // with variance 64 v (unnormalized forward FFT); the estimate divides
  // the two-copy sum by 2L (|L| = 1), so E|H - 1|^2 = 64 v / 4 = 0.16.
  EXPECT_NEAR(err / n, 0.16, 0.08);
}

TEST(ChannelEstimate, RejectsShortInput) {
  EXPECT_THROW(estimate_channel(dsp::CVec(100)), std::invalid_argument);
}

TEST(SmoothChannel, IdentityForWindowOne) {
  ChannelEstimate est = flat_channel();
  est.h[10] = {2.0, 1.0};
  const ChannelEstimate out = smooth_channel(est, 1);
  EXPECT_EQ(out.h[10], est.h[10]);
}

TEST(SmoothChannel, RejectsEvenWindow) {
  EXPECT_THROW(smooth_channel(flat_channel(), 2), std::invalid_argument);
  EXPECT_THROW(smooth_channel(flat_channel(), 0), std::invalid_argument);
}

TEST(SmoothChannel, ReducesNoiseOnFlatChannel) {
  dsp::Rng rng(2);
  ChannelEstimate noisy = flat_channel();
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    noisy.h[static_cast<std::size_t>(k + 26)] += rng.cgaussian(0.04);
  }
  const ChannelEstimate smooth = smooth_channel(noisy, 5);
  double err_raw = 0.0, err_smooth = 0.0;
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) continue;
    err_raw += std::norm(noisy.at_carrier(k) - dsp::Cplx{1.0, 0.0});
    err_smooth += std::norm(smooth.at_carrier(k) - dsp::Cplx{1.0, 0.0});
  }
  EXPECT_LT(err_smooth, 0.5 * err_raw);
}

TEST(SmoothChannel, ToleratesLinearPhaseRamp) {
  // A pure delay (linear phase across carriers) must survive smoothing
  // essentially unchanged — the derotation step handles it.
  ChannelEstimate est;
  const double slope = 0.9;  // radians per carrier: steep
  for (int k = -26; k <= 26; ++k) {
    if (k == 0) {
      est.h[26] = {0.0, 0.0};
      continue;
    }
    const double ang = slope * k;
    est.h[static_cast<std::size_t>(k + 26)] =
        dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  const ChannelEstimate out = smooth_channel(est, 5);
  for (int k = -24; k <= 24; ++k) {
    if (k == 0) continue;
    EXPECT_NEAR(std::abs(out.at_carrier(k)), 1.0, 0.02) << k;
  }
}

TEST(EqualizeSymbol, RemovesChannelAndReportsWeights) {
  dsp::Rng rng(3);
  // Build a demodulated symbol through a known channel.
  ChannelEstimate est;
  for (int k = -26; k <= 26; ++k) {
    est.h[static_cast<std::size_t>(k + 26)] =
        (k == 0) ? dsp::Cplx{0.0, 0.0}
                 : dsp::Cplx{1.0 + 0.01 * k, 0.3};
  }
  DemodulatedSymbol sym;
  std::array<dsp::Cplx, kNumDataCarriers> tx_pts;
  const auto hd = est.data_carriers();
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    tx_pts[i] = rng.cgaussian(1.0);
    sym.data[i] = tx_pts[i] * hd[i];
  }
  const double pol = pilot_polarity(4);
  const auto& pv = pilot_base_values();
  const auto hp = est.pilot_carriers();
  for (std::size_t i = 0; i < kNumPilots; ++i)
    sym.pilots[i] = pol * pv[i] * hp[i];

  const EqualizedSymbol eq = equalize_symbol(sym, est, 4);
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    EXPECT_NEAR(std::abs(eq.points[i] - tx_pts[i]), 0.0, 1e-9) << i;
    EXPECT_NEAR(eq.weights[i], std::norm(hd[i]), 1e-9);
  }
  EXPECT_NEAR(eq.common_phase_error, 0.0, 1e-9);
}

TEST(EqualizeSymbol, TracksCommonPhaseAndGain) {
  // Rotate + scale the whole received symbol; pilots must undo it.
  ChannelEstimate est = flat_channel();
  const dsp::Cplx drift = 1.15 * dsp::Cplx{std::cos(0.35), std::sin(0.35)};
  DemodulatedSymbol sym;
  dsp::Rng rng(4);
  std::array<dsp::Cplx, kNumDataCarriers> tx_pts;
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    tx_pts[i] = rng.cgaussian(1.0);
    sym.data[i] = tx_pts[i] * drift;
  }
  const double pol = pilot_polarity(1);
  const auto& pv = pilot_base_values();
  for (std::size_t i = 0; i < kNumPilots; ++i)
    sym.pilots[i] = pol * pv[i] * drift;

  const EqualizedSymbol eq = equalize_symbol(sym, est, 1, true);
  for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
    EXPECT_NEAR(std::abs(eq.points[i] - tx_pts[i]), 0.0, 1e-9) << i;
  }
  EXPECT_NEAR(eq.common_phase_error, 0.35, 1e-9);

  // With tracking off the drift stays.
  const EqualizedSymbol raw = equalize_symbol(sym, est, 1, false);
  EXPECT_GT(std::abs(raw.points[0] - tx_pts[0]), 0.1);
}

TEST(EqualizeSymbol, ZeroChannelGivesZeroWeight) {
  ChannelEstimate est = flat_channel();
  est.h.fill(dsp::Cplx{0.0, 0.0});
  DemodulatedSymbol sym{};
  const EqualizedSymbol eq = equalize_symbol(sym, est, 0, false);
  for (double w : eq.weights) EXPECT_DOUBLE_EQ(w, 0.0);
}

}  // namespace
}  // namespace wlansim::phy

namespace wlansim::phy {
namespace {

TEST(PerCarrierEvm, LocalizesErrorToInjectedCarrier) {
  PerCarrierEvm prof;
  dsp::Rng rng(9);
  for (int s = 0; s < 20; ++s) {
    dsp::CVec ref(kNumDataCarriers), rx(kNumDataCarriers);
    for (std::size_t i = 0; i < kNumDataCarriers; ++i) {
      ref[i] = rng.cgaussian(1.0);
      rx[i] = ref[i];
    }
    rx[7] += dsp::Cplx{0.3, 0.0};  // corrupt exactly one carrier slot
    prof.add_symbol(rx, ref);
  }
  const auto evm = prof.evm_per_carrier();
  EXPECT_EQ(prof.symbols(), 20u);
  for (std::size_t i = 0; i < evm.size(); ++i) {
    if (i == 7) {
      EXPECT_GT(evm[i], 0.1) << i;
    } else {
      EXPECT_NEAR(evm[i], 0.0, 1e-12) << i;
    }
  }
}

TEST(PerCarrierEvm, CarrierIndexCoversBand) {
  EXPECT_EQ(PerCarrierEvm::carrier_index(0), -26);
  EXPECT_EQ(PerCarrierEvm::carrier_index(kNumDataCarriers - 1), 26);
}

TEST(PerCarrierEvm, RejectsWrongSize) {
  PerCarrierEvm prof;
  dsp::CVec bad(10);
  EXPECT_THROW(prof.add_symbol(bad, bad), std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::phy
