#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/spectrum.h"
#include "rf/analyses.h"
#include "rf/mixer.h"
#include "rf/noise.h"

namespace wlansim::rf {
namespace {

TEST(Mixer, ConversionGainApplied) {
  MixerConfig cfg;
  cfg.conversion_gain_db = 8.0;
  Mixer mix(cfg, 80e6, dsp::Rng(1));
  dsp::CVec in(1000, dsp::Cplx{1e-3, 0.0});
  const dsp::CVec out = mix.process(in);
  EXPECT_NEAR(dsp::to_db(dsp::mean_power(out) / dsp::mean_power(in)), 8.0,
              1e-9);
}

TEST(Mixer, LoOffsetShiftsFrequency) {
  MixerConfig cfg;
  cfg.lo_offset_hz = 2e6;
  Mixer mix(cfg, 80e6, dsp::Rng(1));
  dsp::CVec in(1 << 14, dsp::Cplx{1.0, 0.0});  // DC input
  const dsp::CVec out = mix.process(in);
  const dsp::PsdEstimate psd = dsp::welch_psd(out, {.nfft = 4096});
  double peak_f = 0.0, peak_p = 0.0;
  for (std::size_t i = 0; i < psd.size(); ++i) {
    if (psd.power[i] > peak_p) {
      peak_p = psd.power[i];
      peak_f = psd.freq_norm[i];
    }
  }
  EXPECT_NEAR(peak_f * 80e6, 2e6, 4e4);
}

TEST(Mixer, DcOffsetAdded) {
  MixerConfig cfg;
  cfg.dc_offset = {1e-3, -2e-3};
  Mixer mix(cfg, 80e6, dsp::Rng(1));
  dsp::CVec zeros(100, dsp::Cplx{0.0, 0.0});
  const dsp::CVec out = mix.process(zeros);
  for (const auto& v : out) {
    EXPECT_NEAR(v.real(), 1e-3, 1e-12);
    EXPECT_NEAR(v.imag(), -2e-3, 1e-12);
  }
}

TEST(Mixer, ImageRejectionProducesConjugateTone) {
  MixerConfig cfg;
  cfg.image_rejection_db = 30.0;
  Mixer mix(cfg, 80e6, dsp::Rng(1));
  // Tone at +5 MHz; the image appears at -5 MHz, 30 dB down.
  const double fn = 5e6 / 80e6;
  dsp::CVec in(1 << 14);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ang = dsp::kTwoPi * fn * static_cast<double>(i);
    in[i] = dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  const dsp::CVec out = mix.process(in);
  const double p_main = tone_power(out, fn);
  const double p_image = tone_power(out, -fn);
  EXPECT_NEAR(dsp::to_db(p_main / p_image), 30.0, 0.5);
}

TEST(Mixer, PerfectImageRejectionByDefault) {
  MixerConfig cfg;
  Mixer mix(cfg, 80e6, dsp::Rng(1));
  const double fn = 256.0 / 4096.0;  // integer-bin: leakage-free projection
  dsp::CVec in(1 << 12);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ang = dsp::kTwoPi * fn * static_cast<double>(i);
    in[i] = dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  const dsp::CVec out = mix.process(in);
  EXPECT_LT(tone_power(out, -fn), 1e-20);
}

TEST(Mixer, PhaseNoiseWidensSpectrumAndIsGatedByNoiseSwitch) {
  MixerConfig cfg;
  cfg.phase_noise.level_dbc_hz = -80.0;  // strong, at 100 kHz offset
  cfg.phase_noise.offset_hz = 100e3;
  Mixer noisy(cfg, 80e6, dsp::Rng(3));
  cfg.noise_enabled = false;
  Mixer clean(cfg, 80e6, dsp::Rng(3));

  dsp::CVec in(1 << 15, dsp::Cplx{1.0, 0.0});
  const dsp::CVec yn = noisy.process(in);
  const dsp::CVec yc = clean.process(in);
  // Carrier power lost to the skirt vs. an untouched carrier.
  const double pn = tone_power(yn, 0.0);
  const double pc = tone_power(yc, 0.0);
  EXPECT_NEAR(pc, 1.0, 1e-9);
  EXPECT_LT(pn, 0.9);
}

TEST(Mixer, PhaseNoiseLinewidthFormula) {
  PhaseNoiseSpec spec;
  spec.level_dbc_hz = -100.0;
  spec.offset_hz = 100e3;
  // df = pi f^2 10^(L/10) = pi * 1e10 * 1e-10 = pi.
  EXPECT_NEAR(spec.linewidth_hz(), dsp::kPi, 1e-9);
  PhaseNoiseSpec off;
  EXPECT_FALSE(off.enabled());
  EXPECT_DOUBLE_EQ(off.linewidth_hz(), 0.0);
}

TEST(Mixer, IqImbalanceCreatesImage) {
  MixerConfig cfg;
  cfg.iq_gain_imbalance_db = 1.0;
  cfg.iq_phase_error_deg = 3.0;
  Mixer mix(cfg, 80e6, dsp::Rng(1));
  const double fn = 410.0 / 8192.0;  // integer-bin tone
  dsp::CVec in(1 << 13);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ang = dsp::kTwoPi * fn * static_cast<double>(i);
    in[i] = dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  const dsp::CVec out = mix.process(in);
  const double irr_db =
      dsp::to_db(tone_power(out, fn) / tone_power(out, -fn));
  // ~1 dB / 3 deg imbalance gives an IRR around 24-27 dB.
  EXPECT_GT(irr_db, 20.0);
  EXPECT_LT(irr_db, 32.0);
}

TEST(WhiteNoise, PowerMatchesDensityTimesBandwidth) {
  const double psd = 1e-18;  // W/Hz
  const double fs = 80e6;
  WhiteNoiseSource src(psd, fs, dsp::Rng(5));
  dsp::CVec zeros(1 << 16, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = src.process(zeros);
  EXPECT_NEAR(dsp::mean_power(y) / (psd * fs), 1.0, 0.05);
}

TEST(FlickerNoise, TotalPowerCalibrated) {
  const double p = 1e-9;
  FlickerNoiseSource src(p, 1e3, 200e3, 80e6, dsp::Rng(6));
  dsp::CVec zeros(1 << 17, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = src.process(zeros);
  EXPECT_NEAR(dsp::mean_power(std::span<const dsp::Cplx>(y).subspan(1 << 15)) / p,
              1.0, 0.35);
}

TEST(FlickerNoise, SpectrumSlopesDownward) {
  FlickerNoiseSource src(1e-6, 1e3, 1e6, 80e6, dsp::Rng(7));
  dsp::CVec zeros(1 << 17, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = src.process(zeros);
  const dsp::PsdEstimate psd = dsp::welch_psd(y, {.nfft = 8192});
  // Compare the average PSD near 20 kHz vs near 800 kHz: expect the low
  // band to be much stronger (roughly 1/f over the shaped range).
  const double lo = psd.band_power(20e3 / 80e6, 10e3 / 80e6);
  const double hi = psd.band_power(800e3 / 80e6, 10e3 / 80e6);
  EXPECT_GT(dsp::to_db(lo / hi), 8.0);
}

TEST(DcOffsetSource, AddsConstant) {
  DcOffsetSource src({0.5, -0.25});
  dsp::CVec in = {dsp::Cplx{1.0, 1.0}};
  const dsp::CVec out = src.process(in);
  EXPECT_NEAR(out[0].real(), 1.5, 1e-15);
  EXPECT_NEAR(out[0].imag(), 0.75, 1e-15);
}

}  // namespace
}  // namespace wlansim::rf
