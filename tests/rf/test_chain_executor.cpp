// The fused ChainExecutor's bit-exactness contract: every RfBlock's
// process_tile carries its state across calls such that K tiles of any
// sizes produce exactly the samples one whole-buffer call would, and the
// fused chain therefore exactly reproduces the block-at-a-time reference
// for every tile size (including non-divisors of the buffer length).
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "dsp/rng.h"
#include "rf/adc.h"
#include "rf/agc.h"
#include "rf/amplifier.h"
#include "rf/chain_executor.h"
#include "rf/filters.h"
#include "rf/mixer.h"
#include "rf/noise.h"
#include "rf/receiver_chain.h"
#include "rf/rfblock.h"

namespace wlansim::rf {
namespace {

dsp::CVec test_signal(std::size_t n, double amp, unsigned seed) {
  dsp::Rng rng(seed);
  dsp::CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = 0.013 * static_cast<double>(i);
    x[i] = amp * dsp::Cplx{std::cos(ang), std::sin(ang)} +
           0.3 * amp * rng.cgaussian(1.0);
  }
  return x;
}

void expect_exact_eq(const dsp::CVec& a, const dsp::CVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].real(), b[i].real()) << "sample " << i;
    ASSERT_EQ(a[i].imag(), b[i].imag()) << "sample " << i;
  }
}

/// Feed `in` through `whole` in one process_tile call and through `tiled`
/// (an identically-constructed instance) in an uneven tile schedule mixing
/// tiny, prime-sized, and large tiles; the outputs must match bit for bit.
void expect_tile_continuity(RfBlock& whole, RfBlock& tiled,
                            const dsp::CVec& in) {
  dsp::CVec a(in.size()), b(in.size());
  whole.process_tile(in, a);
  static constexpr std::size_t kSchedule[] = {1, 7, 128, 333, 1024};
  std::size_t o = 0, t = 0;
  while (o < in.size()) {
    const std::size_t m = std::min(kSchedule[t++ % 5], in.size() - o);
    tiled.process_tile(std::span<const dsp::Cplx>(in.data() + o, m),
                       std::span<dsp::Cplx>(b.data() + o, m));
    o += m;
  }
  expect_exact_eq(a, b);
}

TEST(TileContinuity, AmplifierRappWithNoise) {
  AmplifierConfig cfg;
  cfg.noise_figure_db = 5.0;  // exercises the rng stream across tile splits
  Amplifier whole(cfg, 80e6, dsp::Rng(11));
  Amplifier tiled(cfg, 80e6, dsp::Rng(11));
  expect_tile_continuity(whole, tiled, test_signal(3000, 3e-3, 1));
}

TEST(TileContinuity, AmplifierAmPm) {
  AmplifierConfig cfg;
  cfg.am_pm_max_deg = 10.0;  // legacy am_am/am_pm per-sample path
  cfg.noise_figure_db = 3.0;
  Amplifier whole(cfg, 80e6, dsp::Rng(12));
  Amplifier tiled(cfg, 80e6, dsp::Rng(12));
  expect_tile_continuity(whole, tiled, test_signal(3000, 3e-3, 2));
}

TEST(TileContinuity, MixerConstLo) {
  MixerConfig cfg;
  cfg.conversion_gain_db = 8.0;
  cfg.image_rejection_db = 40.0;
  cfg.iq_gain_imbalance_db = 0.3;
  cfg.iq_phase_error_deg = 2.0;
  cfg.dc_offset = dsp::Cplx{3e-5, 2e-5};
  Mixer whole(cfg, 80e6, dsp::Rng(13));
  Mixer tiled(cfg, 80e6, dsp::Rng(13));
  expect_tile_continuity(whole, tiled, test_signal(3000, 1e-3, 3));
}

TEST(TileContinuity, MixerOffsetAndPhaseNoise) {
  MixerConfig cfg;
  cfg.lo_offset_hz = 187e3;  // rotating-LO path: phase carried across tiles
  cfg.phase_noise.level_dbc_hz = -95.0;
  Mixer whole(cfg, 80e6, dsp::Rng(14));
  Mixer tiled(cfg, 80e6, dsp::Rng(14));
  expect_tile_continuity(whole, tiled, test_signal(3000, 1e-3, 4));
}

TEST(TileContinuity, Filters) {
  {
    ChebyshevLowpass whole(7, 1.0, 8.6e6, 80e6, "lpf");
    ChebyshevLowpass tiled(7, 1.0, 8.6e6, 80e6, "lpf");
    expect_tile_continuity(whole, tiled, test_signal(3000, 1e-2, 5));
  }
  {
    DcBlockHighpass whole(2, 120e3, 80e6, "hpf");
    DcBlockHighpass tiled(2, 120e3, 80e6, "hpf");
    expect_tile_continuity(whole, tiled, test_signal(3000, 1e-2, 6));
  }
  {
    ButterworthLowpass whole(4, 9e6, 80e6, "bw");
    ButterworthLowpass tiled(4, 9e6, 80e6, "bw");
    expect_tile_continuity(whole, tiled, test_signal(3000, 1e-2, 7));
  }
}

TEST(TileContinuity, Agc) {
  AgcConfig cfg;
  cfg.lock_count = 96;  // exercise the lock state machine across tiles
  Agc whole(cfg);
  Agc tiled(cfg);
  expect_tile_continuity(whole, tiled, test_signal(3000, 1e-2, 8));
}

TEST(TileContinuity, Adc) {
  AdcConfig cfg;
  cfg.full_scale = 0.08;
  Adc whole(cfg);
  Adc tiled(cfg);
  expect_tile_continuity(whole, tiled, test_signal(3000, 0.05, 9));
}

TEST(TileContinuity, NoiseSources) {
  {
    WhiteNoiseSource whole(1e-17, 80e6, dsp::Rng(21));
    WhiteNoiseSource tiled(1e-17, 80e6, dsp::Rng(21));
    expect_tile_continuity(whole, tiled, test_signal(3000, 1e-3, 10));
  }
  {
    FlickerNoiseSource whole(1e-9, 1e3, 200e3, 80e6, dsp::Rng(22));
    FlickerNoiseSource tiled(1e-9, 1e3, 200e3, 80e6, dsp::Rng(22));
    expect_tile_continuity(whole, tiled, test_signal(3000, 1e-3, 11));
  }
  {
    WanderingDcSource whole(1e-4, 50e3, 80e6, dsp::Rng(23));
    WanderingDcSource tiled(1e-4, 50e3, 80e6, dsp::Rng(23));
    expect_tile_continuity(whole, tiled, test_signal(3000, 1e-3, 12));
  }
  {
    DcOffsetSource whole(dsp::Cplx{3e-4, 2e-4});
    DcOffsetSource tiled(dsp::Cplx{3e-4, 2e-4});
    expect_tile_continuity(whole, tiled, test_signal(3000, 1e-3, 13));
  }
}

TEST(ChainExecutor, FusedMatchesBlockwiseAcrossTileSizes) {
  const dsp::CVec in = test_signal(4096 + 321, 1e-4, 31);  // non-power-of-2
  DoubleConversionConfig cfg;
  dsp::CVec ref;
  {
    DoubleConversionReceiver rx(cfg, dsp::Rng(42));
    rx.process_blockwise_into(in, ref);
  }
  // Tile sizes spanning degenerate (1), non-divisors of the length, the
  // auto default, and larger-than-the-buffer.
  for (std::size_t tile : {std::size_t{1}, std::size_t{3}, std::size_t{100},
                           std::size_t{333}, std::size_t{1024},
                           std::size_t{4096}, in.size() + 1000}) {
    DoubleConversionConfig c = cfg;
    c.tile_size = tile;
    DoubleConversionReceiver rx(c, dsp::Rng(42));
    dsp::CVec out;
    rx.process_into(in, out);
    ASSERT_EQ(out.size(), ref.size()) << "tile " << tile;
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i].real(), ref[i].real())
          << "tile " << tile << " sample " << i;
      ASSERT_EQ(out[i].imag(), ref[i].imag())
          << "tile " << tile << " sample " << i;
    }
  }
}

TEST(ChainExecutor, InPlaceOutputAliasesInput) {
  const dsp::CVec in = test_signal(2048, 1e-4, 32);
  DoubleConversionConfig cfg;
  dsp::CVec ref;
  DoubleConversionReceiver rx_ref(cfg, dsp::Rng(7));
  rx_ref.process_into(in, ref);

  DoubleConversionReceiver rx(cfg, dsp::Rng(7));
  dsp::CVec buf = in;  // process in place: out aliases in
  rx.process_tile(buf, buf);
  expect_exact_eq(buf, ref);
}

TEST(ChainExecutor, EmptyChainCopies) {
  RfChain chain;
  const dsp::CVec in = test_signal(100, 1.0, 33);
  dsp::CVec out;
  chain.process_into(in, out);
  expect_exact_eq(out, in);
}

TEST(ChainExecutor, AutoTileFitsL1) {
  // The auto tile (two ping-pong buffers of complex doubles) must stay
  // within a conservative L1 data-cache budget.
  const std::size_t t = ChainExecutor::auto_tile_size();
  EXPECT_GE(t, 256u);
  EXPECT_LE(2 * t * sizeof(dsp::Cplx), 48u * 1024u);
}

}  // namespace
}  // namespace wlansim::rf
