#include "rf/amplifier.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "rf/analyses.h"

namespace wlansim::rf {
namespace {

AmplifierConfig base_cfg() {
  AmplifierConfig cfg;
  cfg.gain_db = 15.0;
  cfg.noise_figure_db = 0.0;
  cfg.p1db_in_dbm = -20.0;
  cfg.model = NonlinearityModel::kRapp;
  return cfg;
}

TEST(Amplifier, SmallSignalGainMatchesConfig) {
  Amplifier amp(base_cfg(), 80e6, dsp::Rng(1));
  // 40 dB below compression: essentially linear.
  const double a = std::sqrt(dsp::dbm_to_watts(-60.0));
  EXPECT_NEAR(dsp::to_db(std::pow(amp.am_am(a) / a, 2.0)), 15.0, 0.01);
}

TEST(Amplifier, GainCompressesExactly1dbAtP1db) {
  for (auto model : {NonlinearityModel::kRapp, NonlinearityModel::kClippedCubic}) {
    AmplifierConfig cfg = base_cfg();
    cfg.model = model;
    Amplifier amp(cfg, 80e6, dsp::Rng(1));
    const double a1 = std::sqrt(dsp::dbm_to_watts(cfg.p1db_in_dbm));
    const double gain_db = dsp::to_db(std::pow(amp.am_am(a1) / a1, 2.0));
    EXPECT_NEAR(gain_db, 15.0 - 1.0, 0.01) << static_cast<int>(model);
  }
}

TEST(Amplifier, RappSaturatesMonotonically) {
  Amplifier amp(base_cfg(), 80e6, dsp::Rng(1));
  double prev_out = 0.0;
  double prev_gain = 1e9;
  for (double dbm = -60.0; dbm < 30.0; dbm += 1.0) {
    const double a = std::sqrt(dsp::dbm_to_watts(dbm));
    const double out = amp.am_am(a);
    EXPECT_GT(out, prev_out);  // output keeps rising (soft limiter)
    const double g = out / a;
    EXPECT_LE(g, prev_gain + 1e-12);  // gain monotonically compresses
    prev_out = out;
    prev_gain = g;
  }
}

TEST(Amplifier, ClippedCubicHoldsPeakBeyondClip) {
  AmplifierConfig cfg = base_cfg();
  cfg.model = NonlinearityModel::kClippedCubic;
  Amplifier amp(cfg, 80e6, dsp::Rng(1));
  const double a1 = std::sqrt(dsp::dbm_to_watts(cfg.p1db_in_dbm));
  const double clip = a1 / std::sqrt(3.0 * (1.0 - std::pow(10.0, -0.05)));
  // Beyond the polynomial peak the output must not fold back down.
  const double peak = amp.am_am(clip);
  EXPECT_NEAR(amp.am_am(2.0 * clip), peak, 1e-12);
  EXPECT_NEAR(amp.am_am(10.0 * clip), peak, 1e-12);
}

TEST(Amplifier, LinearModelNeverCompresses) {
  AmplifierConfig cfg = base_cfg();
  cfg.model = NonlinearityModel::kLinear;
  Amplifier amp(cfg, 80e6, dsp::Rng(1));
  const double g0 = amp.am_am(1e-6) / 1e-6;
  EXPECT_NEAR(amp.am_am(10.0) / 10.0, g0, 1e-9);
}

TEST(Amplifier, AmPmRisesWithDriveAndSaturates) {
  AmplifierConfig cfg = base_cfg();
  cfg.am_pm_max_deg = 10.0;
  Amplifier amp(cfg, 80e6, dsp::Rng(1));
  const double a1 = std::sqrt(dsp::dbm_to_watts(cfg.p1db_in_dbm));
  EXPECT_NEAR(amp.am_pm(1e-6 * a1), 0.0, 1e-6);
  EXPECT_NEAR(amp.am_pm(a1), 0.5 * 10.0 * dsp::kPi / 180.0, 1e-9);
  EXPECT_LT(amp.am_pm(100.0 * a1), 10.0 * dsp::kPi / 180.0 + 1e-9);
  EXPECT_GT(amp.am_pm(100.0 * a1), 0.99 * 10.0 * dsp::kPi / 180.0);
}

TEST(Amplifier, AmPmZeroWhenDisabled) {
  Amplifier amp(base_cfg(), 80e6, dsp::Rng(1));
  EXPECT_DOUBLE_EQ(amp.am_pm(1.0), 0.0);
}

TEST(Amplifier, NoiseFigureMeasuredMatchesConfig) {
  for (double nf : {3.0, 6.0, 10.0}) {
    AmplifierConfig cfg = base_cfg();
    cfg.noise_figure_db = nf;
    Amplifier amp(cfg, 80e6, dsp::Rng(7));
    ToneTestConfig tc;
    tc.num_samples = 1 << 15;
    const double measured = measure_noise_figure_db(amp, tc);
    EXPECT_NEAR(measured, nf, 0.4) << nf;
  }
}

TEST(Amplifier, NoiseDisabledBySwitch) {
  AmplifierConfig cfg = base_cfg();
  cfg.noise_figure_db = 10.0;
  cfg.noise_enabled = false;  // the AMS limitation switch
  Amplifier amp(cfg, 80e6, dsp::Rng(7));
  dsp::CVec zeros(4096, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = amp.process(zeros);
  EXPECT_DOUBLE_EQ(dsp::mean_power(y), 0.0);
}

TEST(Amplifier, MeasuredP1dbMatchesConfigured) {
  Amplifier amp(base_cfg(), 80e6, dsp::Rng(1));
  ToneTestConfig tc;
  tc.num_samples = 4096;
  tc.settle_samples = 64;
  const double p1 = measure_p1db_in_dbm(amp, tc, -50.0, 0.0, 0.25);
  EXPECT_NEAR(p1, -20.0, 0.5);
}

TEST(Amplifier, MeasuredIip3Near9p6AboveP1db) {
  // Classic cubic relation: IIP3 ~ P1dB + 9.6 dB.
  AmplifierConfig cfg = base_cfg();
  cfg.model = NonlinearityModel::kClippedCubic;
  Amplifier amp(cfg, 80e6, dsp::Rng(1));
  ToneTestConfig tc;
  tc.tone_hz = 1e6;
  tc.tone2_hz = 1.4e6;
  tc.num_samples = 1 << 14;
  const double iip3 = measure_iip3_dbm(amp, tc, -45.0);
  EXPECT_NEAR(iip3, cfg.p1db_in_dbm + 9.6, 1.0);
}

TEST(Amplifier, PhasePreservedThroughGain) {
  Amplifier amp(base_cfg(), 80e6, dsp::Rng(1));
  const dsp::Cplx x = 1e-4 * dsp::Cplx{std::cos(1.1), std::sin(1.1)};
  const dsp::CVec y = amp.process(dsp::CVec{x});
  EXPECT_NEAR(std::arg(y[0]), 1.1, 1e-9);
}

TEST(Amplifier, RejectsBadParameters) {
  AmplifierConfig cfg = base_cfg();
  EXPECT_THROW(Amplifier(cfg, 0.0, dsp::Rng(1)), std::invalid_argument);
  cfg.rapp_smoothness = 0.0;
  EXPECT_THROW(Amplifier(cfg, 80e6, dsp::Rng(1)), std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::rf
