#include "rf/direct_conversion.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/spectrum.h"
#include "rf/analyses.h"
#include "rf/noise.h"

namespace wlansim::rf {
namespace {

DirectConversionConfig quiet_zif() {
  DirectConversionConfig cfg;
  cfg.noise_enabled = false;
  cfg.dc_offset = {0.0, 0.0};
  cfg.flicker_power_dbm = -200.0;
  cfg.iq_gain_imbalance_db = 0.0;
  cfg.iq_phase_error_deg = 0.0;
  cfg.adc.enabled = false;
  cfg.agc.loop_gain = 0.0;
  cfg.agc.initial_gain_db = 0.0;
  return cfg;
}

TEST(DirectConversion, SmallSignalGainMatchesBudget) {
  DirectConversionReceiver rx(quiet_zif(), dsp::Rng(1));
  ToneTestConfig tc;
  tc.tone_hz = 2e6;
  tc.num_samples = 8192;
  tc.settle_samples = 8192;
  EXPECT_NEAR(measure_gain_db(rx, tc, -60.0), rx.front_end_gain_db(), 1.0);
}

TEST(DirectConversion, DcServoRemovesStaticOffset) {
  DirectConversionConfig cfg = quiet_zif();
  cfg.dc_offset = {1e-3, -1e-3};
  DirectConversionReceiver rx(cfg, dsp::Rng(2));
  dsp::CVec zeros(1 << 16, dsp::Cplx{0.0, 0.0});
  const dsp::CVec out = rx.process(zeros);
  const std::span<const dsp::Cplx> settled(out.data() + (1 << 15), 1 << 15);
  EXPECT_LT(std::abs(tone_amplitude(settled, 0.0)), 1e-4);
}

TEST(DirectConversion, ServoDisabledLeavesOffset) {
  DirectConversionConfig cfg = quiet_zif();
  cfg.dc_offset = {1e-3, 0.0};
  cfg.dc_servo_cutoff_hz = 0.0;
  DirectConversionReceiver rx(cfg, dsp::Rng(3));
  dsp::CVec zeros(1 << 14, dsp::Cplx{0.0, 0.0});
  const dsp::CVec out = rx.process(zeros);
  const std::span<const dsp::Cplx> settled(out.data() + (1 << 13), 1 << 13);
  EXPECT_GT(std::abs(tone_amplitude(settled, 0.0)), 1e-4);
}

TEST(DirectConversion, IqImbalanceFoldsImage) {
  DirectConversionConfig cfg = quiet_zif();
  cfg.iq_gain_imbalance_db = 1.0;
  cfg.iq_phase_error_deg = 5.0;
  DirectConversionReceiver rx(cfg, dsp::Rng(4));
  const double fn = 256.0 / 8192.0;  // 2.5 MHz at 80 Msps, integer bin
  dsp::CVec in(1 << 14);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ang = dsp::kTwoPi * fn * static_cast<double>(i);
    in[i] = 1e-4 * dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  const dsp::CVec out = rx.process(in);
  const std::span<const dsp::Cplx> settled(out.data() + (1 << 13), 1 << 13);
  const double irr =
      dsp::to_db(tone_power(settled, fn) / tone_power(settled, -fn));
  EXPECT_GT(irr, 15.0);
  EXPECT_LT(irr, 35.0);  // imbalance present: image clearly visible
}

TEST(WanderingDc, RmsMatchesSpec) {
  WanderingDcSource src(2e-3, 50e3, 80e6, dsp::Rng(5));
  dsp::CVec zeros(1 << 17, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = src.process(zeros);
  const double rms = std::sqrt(dsp::mean_power(y));
  EXPECT_NEAR(rms / 2e-3, 1.0, 0.35);
}

TEST(WanderingDc, EnergyConcentratedNearDc) {
  WanderingDcSource src(1e-2, 30e3, 80e6, dsp::Rng(6));
  dsp::CVec zeros(1 << 17, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = src.process(zeros);
  const dsp::PsdEstimate psd = dsp::welch_psd(y, {.nfft = 8192});
  const double near = psd.band_power(0.0, 200e3 / 80e6);
  const double far = psd.band_power(5e6 / 80e6, 200e3 / 80e6);
  EXPECT_GT(dsp::to_db(near / std::max(far, 1e-30)), 20.0);
}

TEST(WanderingDc, RejectsBadParameters) {
  EXPECT_THROW(WanderingDcSource(-1.0, 1e3, 80e6, dsp::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(WanderingDcSource(1.0, 0.0, 80e6, dsp::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(WanderingDcSource(1.0, 50e6, 80e6, dsp::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::rf
