// Tests of the J&K-style black-box extraction (paper §4, option two).
#include "rf/blackbox.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "rf/analyses.h"
#include "rf/receiver_chain.h"

namespace wlansim::rf {
namespace {

/// A characterization-friendly chain: static gain, no adaptation.
DoubleConversionConfig static_chain() {
  DoubleConversionConfig cfg;
  cfg.noise_enabled = false;
  cfg.mixer2_dc_offset = {0.0, 0.0};
  cfg.adc.enabled = false;
  cfg.agc.loop_gain = 0.0;
  cfg.agc.initial_gain_db = 0.0;
  return cfg;
}

ExtractionConfig fast_extraction() {
  ExtractionConfig cfg;
  cfg.fir_taps = 41;
  cfg.num_env_points = 12;
  cfg.tone_samples = 2048;
  cfg.settle_samples = 2048;
  return cfg;
}

TEST(FitComplexFir, ExactlyInterpolatesGridSamples) {
  // Build an arbitrary smooth response on the grid and check the fitted
  // FIR reproduces it at the grid frequencies.
  const std::size_t t = 21;
  dsp::CVec h(t);
  for (std::size_t k = 0; k < t; ++k) {
    const double x = (static_cast<double>(k) - 10.0) / 10.0;
    h[k] = std::exp(-x * x) * dsp::Cplx{std::cos(0.3 * x), std::sin(0.3 * x)};
  }
  const dsp::CVec taps = fit_complex_fir(h);
  dsp::CFirFilter f(taps);
  for (std::size_t k = 0; k < t; ++k) {
    const double fn = (static_cast<double>(k) - 10.0) / static_cast<double>(t);
    EXPECT_NEAR(std::abs(f.response(fn)), std::abs(h[k]), 1e-9) << k;
  }
}

TEST(FitComplexFir, RecentersBulkDelay) {
  // A pure delay of 30 samples sampled on a 21-tap grid: the fit must
  // produce a flat magnitude response (delay folded to the tap center).
  const std::size_t t = 21;
  dsp::CVec h(t);
  for (std::size_t k = 0; k < t; ++k) {
    const double fn = (static_cast<double>(k) - 10.0) / static_cast<double>(t);
    const double ang = -dsp::kTwoPi * fn * 30.0;
    h[k] = dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  const dsp::CVec taps = fit_complex_fir(h);
  // Expect essentially a single unit tap near the center.
  double peak = 0.0;
  std::size_t peak_idx = 0;
  for (std::size_t i = 0; i < taps.size(); ++i) {
    if (std::abs(taps[i]) > peak) {
      peak = std::abs(taps[i]);
      peak_idx = i;
    }
  }
  EXPECT_NEAR(peak, 1.0, 1e-6);
  EXPECT_EQ(peak_idx, 10u);
}

TEST(FitComplexFir, RejectsEvenTapCount) {
  EXPECT_THROW(fit_complex_fir(dsp::CVec(10)), std::invalid_argument);
}

TEST(Blackbox, ExtractedGainMatchesChain) {
  DoubleConversionReceiver chain(static_chain(), dsp::Rng(1));
  const BlackBoxData data = extract_blackbox(chain, fast_extraction());
  BlackBoxModel model(data, dsp::Rng(2));

  ToneTestConfig tc;
  tc.tone_hz = 2e6;
  tc.num_samples = 4096;
  tc.settle_samples = 2048;
  const double g_chain = measure_gain_db(chain, tc, -60.0);
  const double g_model = measure_gain_db(model, tc, -60.0);
  EXPECT_NEAR(g_model, g_chain, 0.5);
}

TEST(Blackbox, ExtractedSelectivityTracksChannelFilter) {
  DoubleConversionReceiver chain(static_chain(), dsp::Rng(1));
  const BlackBoxData data = extract_blackbox(chain, fast_extraction());
  BlackBoxModel model(data, dsp::Rng(2));

  ToneTestConfig tc;
  tc.num_samples = 4096;
  tc.settle_samples = 2048;
  // The surrogate cannot match an order-7 Chebyshev edge exactly from a
  // ~2 MHz frequency grid, but adjacent-channel rejection must be strong.
  const double rej = measure_rejection_db(model, tc, 3e6, 20e6, -60.0);
  EXPECT_GT(rej, 35.0);
}

TEST(Blackbox, ExtractedCompressionMatchesChain) {
  DoubleConversionConfig cc = static_chain();
  cc.lna_p1db_in_dbm = -25.0;
  DoubleConversionReceiver chain(cc, dsp::Rng(1));
  const BlackBoxData data = extract_blackbox(chain, fast_extraction());
  BlackBoxModel model(data, dsp::Rng(2));

  ToneTestConfig tc;
  tc.tone_hz = 2e6;
  tc.num_samples = 4096;
  tc.settle_samples = 2048;
  const double p1_model = measure_p1db_in_dbm(model, tc, -45.0, -10.0);
  EXPECT_NEAR(p1_model, -25.0, 2.0);
}

TEST(Blackbox, NoisePowerReplayed) {
  DoubleConversionConfig cc = static_chain();
  cc.noise_enabled = true;
  cc.lna_nf_db = 6.0;
  DoubleConversionReceiver chain(cc, dsp::Rng(3));
  const BlackBoxData data = extract_blackbox(chain, fast_extraction());
  EXPECT_GT(data.noise_power, 0.0);

  BlackBoxModel model(data, dsp::Rng(4));
  dsp::CVec zeros(1 << 14, dsp::Cplx{0.0, 0.0});
  const dsp::CVec y = model.process(zeros);
  EXPECT_NEAR(dsp::mean_power(y) / data.noise_power, 1.0, 0.1);
}

TEST(Blackbox, AmPmTableInterpolates) {
  BlackBoxData data;
  data.sample_rate_hz = 80e6;
  data.freq_hz = {0.0};
  data.h = {dsp::Cplx{1.0, 0.0}};
  data.env_in = {1.0, 2.0, 3.0};
  data.env_out = {2.0, 3.8, 5.0};  // compressing
  data.env_phase = {0.0, 0.1, 0.3};
  // h must be odd-size >= 3 for the FIR fit; use a flat 3-point response.
  data.freq_hz = {-1.0, 0.0, 1.0};
  data.h = {dsp::Cplx{1, 0}, dsp::Cplx{1, 0}, dsp::Cplx{1, 0}};
  BlackBoxModel model(data, dsp::Rng(1));
  EXPECT_NEAR(model.am_am_gain(1.5), (2.0 + 0.5 * 1.8) / 1.5, 1e-12);
  EXPECT_NEAR(model.am_pm(2.5), 0.2, 1e-12);
  // Clamped at the ends.
  EXPECT_NEAR(model.am_am_gain(0.1), 2.0, 1e-12);
  EXPECT_NEAR(model.am_pm(10.0), 0.3, 1e-12);
}

TEST(Blackbox, SurrogateIsFasterThanChain) {
  // Time against the surrogate's actual replacement target: the default
  // (noise-on, AGC-adapting, ADC-quantizing) front-end that system-level
  // runs instantiate.  static_chain() exists to make the *accuracy* tests
  // deterministic; it strips out exactly the per-sample work (noise
  // synthesis, gain adaptation) that the surrogate subsumes into a single
  // equivalent output noise source, so it is not the speed baseline the
  // J&K extraction is claimed against.  Extraction here runs on the same
  // noisy DUT, so the surrogate pays for its own noise replay too.
  DoubleConversionReceiver chain(DoubleConversionConfig{}, dsp::Rng(1));
  const BlackBoxData data = extract_blackbox(chain, fast_extraction());
  BlackBoxModel model(data, dsp::Rng(2));

  dsp::Rng rng(5);
  dsp::CVec in(1 << 14);
  for (auto& v : in) v = 1e-4 * rng.cgaussian(1.0);

  // Best-of-3: a single-shot measurement flips under scheduler noise once
  // the optimized chain is only ~1.4x slower than the surrogate.
  const auto time_of = [&](RfBlock& b) {
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
      b.reset();
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < 5; ++i) b.process(in);
      best = std::min(
          best, std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count());
    }
    return best;
  };
  const double t_chain = time_of(chain);
  const double t_model = time_of(model);
  EXPECT_LT(t_model, t_chain);  // the point of extraction: speed
}

}  // namespace
}  // namespace wlansim::rf
