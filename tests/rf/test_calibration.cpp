// Tests of the design-flow calibration step (paper §4: "Calibration of
// the behavioral models").
#include "rf/calibration.h"

#include <gtest/gtest.h>

namespace wlansim::rf {
namespace {

/// "Golden" reference standing in for the circuit-level design: an
/// amplifier with a different nonlinearity model and known parameters.
std::unique_ptr<Amplifier> golden(double gain_db, double p1db, double nf) {
  AmplifierConfig cfg;
  cfg.label = "golden";
  cfg.gain_db = gain_db;
  cfg.p1db_in_dbm = p1db;
  cfg.noise_figure_db = nf;
  cfg.model = NonlinearityModel::kClippedCubic;  // "circuit-like" reference
  return std::make_unique<Amplifier>(cfg, 80e6, dsp::Rng(3));
}

CalibrationConfig fast_cal() {
  CalibrationConfig cfg;
  cfg.tones.num_samples = 8192;
  cfg.tones.settle_samples = 512;
  return cfg;
}

TEST(Calibration, RecoversGoldenParameters) {
  auto ref = golden(18.0, -22.0, 4.0);
  const CalibrationResult res =
      calibrate_amplifier(*ref, fast_cal(), NonlinearityModel::kRapp,
                          dsp::Rng(5));
  EXPECT_NEAR(res.fitted.gain_db, 18.0, 0.2);
  EXPECT_NEAR(res.fitted.p1db_in_dbm, -22.0, 1.0);
  EXPECT_NEAR(res.fitted.noise_figure_db, 4.0, 0.5);
}

TEST(Calibration, ResidualsAreSmall) {
  auto ref = golden(10.0, -15.0, 2.0);
  const CalibrationResult res =
      calibrate_amplifier(*ref, fast_cal(), NonlinearityModel::kRapp,
                          dsp::Rng(6));
  EXPECT_LT(res.gain_error_db, 0.2);
  EXPECT_LT(res.p1db_error_db, 1.0);
  EXPECT_LT(res.nf_error_db, 0.75);
}

TEST(Calibration, NoiseCalibrationOptional) {
  auto ref = golden(12.0, -18.0, 5.0);
  CalibrationConfig cfg = fast_cal();
  cfg.calibrate_noise = false;
  const CalibrationResult res = calibrate_amplifier(
      *ref, cfg, NonlinearityModel::kClippedCubic, dsp::Rng(7));
  EXPECT_FALSE(res.fitted.noise_enabled);
  EXPECT_DOUBLE_EQ(res.fitted.noise_figure_db, 0.0);
  EXPECT_DOUBLE_EQ(res.nf_error_db, 0.0);
}

TEST(Calibration, WorksAcrossParameterRange) {
  for (double p1 : {-35.0, -25.0, -12.0}) {
    auto ref = golden(20.0, p1, 3.0);
    const CalibrationResult res =
        calibrate_amplifier(*ref, fast_cal(), NonlinearityModel::kRapp,
                            dsp::Rng(8));
    EXPECT_NEAR(res.fitted.p1db_in_dbm, p1, 1.0) << p1;
  }
}

}  // namespace
}  // namespace wlansim::rf
