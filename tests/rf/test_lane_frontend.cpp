// Lane-vs-scalar bit identity of the RF front-end: a width-W SoA wave
// through DoubleConversionReceiver::process_tile_lanes must reproduce, per
// lane, exactly what a scalar receiver reseeded with that lane's rng
// produces — the contract the batched packet engine stands on.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dsp/kernels.h"
#include "dsp/rng.h"
#include "rf/receiver_chain.h"

namespace kn = wlansim::dsp::kernels;
using wlansim::dsp::Cplx;
using wlansim::dsp::CVec;
using wlansim::dsp::RVec;
using wlansim::dsp::Rng;
using wlansim::rf::DoubleConversionConfig;
using wlansim::rf::DoubleConversionReceiver;

namespace {

CVec make_burst(std::size_t n, std::uint64_t seed, double amp) {
  Rng rng(seed);
  CVec v(n);
  for (auto& x : v) x = rng.cgaussian(amp * amp);
  return v;
}

/// Scalar reference: fresh reset + reseed per lane, exactly what the
/// direct packet path does per packet.
CVec scalar_reference(DoubleConversionReceiver& fe, const CVec& in, Rng rng) {
  fe.reset();
  fe.reseed(rng);
  CVec out;
  fe.process_into(in, out);
  return out;
}

void expect_bit_equal(const CVec& got, const CVec& want, std::size_t lane) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(std::memcmp(&got[i], &want[i], sizeof(Cplx)), 0)
        << "lane " << lane << " sample " << i;
}

}  // namespace

TEST(LaneFrontend, DefaultChainSupportsLanes) {
  DoubleConversionConfig cfg;
  DoubleConversionReceiver fe(cfg, Rng(1));
  EXPECT_TRUE(fe.supports_lanes());
}

TEST(LaneFrontend, PhaseNoiseDisablesLanes) {
  DoubleConversionConfig cfg;
  cfg.lo_phase_noise.level_dbc_hz = -95.0;
  cfg.lo_phase_noise.offset_hz = 100e3;
  DoubleConversionReceiver fe(cfg, Rng(1));
  EXPECT_FALSE(fe.supports_lanes());
}

TEST(LaneFrontend, LanesMatchScalarPerLane) {
  DoubleConversionConfig cfg;
  DoubleConversionReceiver fe(cfg, Rng(42));
  ASSERT_TRUE(fe.supports_lanes());

  // Realistic level: around -60 dBm so the AGC actually moves, with enough
  // samples (> lock_count * detector settling) to cross lock transitions.
  const std::size_t n = 6000;
  const std::size_t nl = kn::kLaneWidth;
  std::vector<CVec> inputs(nl);
  std::vector<Rng> seeds;
  RVec soa(2 * n * nl);
  for (std::size_t l = 0; l < nl; ++l) {
    inputs[l] = make_burst(n, 1000 + l, 2.2e-5 * (1.0 + 0.2 * l));
    kn::lanes_pack(inputs[l].data(), n, nl, l, soa.data());
    seeds.emplace_back(9000 + 13 * l);
  }

  fe.reset();
  fe.begin_lanes(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    fe.reseed_lanes(l, seeds[l]);
    fe.set_lane_tapes(l, nullptr, nullptr);
  }
  fe.process_tile_lanes(soa.data(), n, nl);

  for (std::size_t l = 0; l < nl; ++l) {
    CVec got(n);
    kn::lanes_unpack(soa.data(), n, nl, l, got.data());
    const CVec want = scalar_reference(fe, inputs[l], seeds[l]);
    expect_bit_equal(got, want, l);
  }
}

TEST(LaneFrontend, PartialWidthMatchesScalar) {
  // A tail wave narrower than kLaneWidth takes the runtime-width kernel
  // bodies; the contract is identical.
  DoubleConversionConfig cfg;
  DoubleConversionReceiver fe(cfg, Rng(7));
  const std::size_t n = 4000, nl = 3;
  std::vector<CVec> inputs(nl);
  RVec soa(2 * n * nl);
  for (std::size_t l = 0; l < nl; ++l) {
    inputs[l] = make_burst(n, 50 + l, 3.0e-5);
    kn::lanes_pack(inputs[l].data(), n, nl, l, soa.data());
  }
  fe.reset();
  fe.begin_lanes(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    fe.reseed_lanes(l, Rng(300 + l));
    fe.set_lane_tapes(l, nullptr, nullptr);
  }
  fe.process_tile_lanes(soa.data(), n, nl);
  for (std::size_t l = 0; l < nl; ++l) {
    CVec got(n);
    kn::lanes_unpack(soa.data(), n, nl, l, got.data());
    expect_bit_equal(got, scalar_reference(fe, inputs[l], Rng(300 + l)), l);
  }
}

TEST(LaneFrontend, TapeRecordThenReplayIsBitIdentical) {
  DoubleConversionConfig cfg;
  DoubleConversionReceiver fe(cfg, Rng(3));
  const std::size_t n = 4000, nl = 2;
  std::vector<CVec> inputs(nl);
  RVec soa_rec(2 * n * nl);
  for (std::size_t l = 0; l < nl; ++l) {
    inputs[l] = make_burst(n, 70 + l, 2.5e-5);
    kn::lanes_pack(inputs[l].data(), n, nl, l, soa_rec.data());
  }
  RVec soa_rep = soa_rec;

  // Pass 1: empty tapes -> record while drawing from the lane rngs.
  std::vector<RVec> lna(nl), flick(nl);
  fe.reset();
  fe.begin_lanes(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    fe.reseed_lanes(l, Rng(500 + l));
    fe.set_lane_tapes(l, &lna[l], &flick[l]);
  }
  fe.process_tile_lanes(soa_rec.data(), n, nl);
  for (std::size_t l = 0; l < nl; ++l) {
    EXPECT_EQ(lna[l].size(), 2 * n);    // 2 unit normals per sample
    EXPECT_EQ(flick[l].size(), 2 * n);
  }

  // Pass 2: complete tapes -> replay; the lane rngs are deliberately
  // DIFFERENT, proving the draws come from the tape alone.
  fe.reset();
  fe.begin_lanes(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    fe.reseed_lanes(l, Rng(987654 + l));
    fe.set_lane_tapes(l, &lna[l], &flick[l]);
  }
  fe.process_tile_lanes(soa_rep.data(), n, nl);
  ASSERT_EQ(
      std::memcmp(soa_rec.data(), soa_rep.data(), soa_rec.size() * 8), 0);

  // And the recorded output still equals the scalar reference.
  for (std::size_t l = 0; l < nl; ++l) {
    CVec got(n);
    kn::lanes_unpack(soa_rec.data(), n, nl, l, got.data());
    expect_bit_equal(got, scalar_reference(fe, inputs[l], Rng(500 + l)), l);
  }
}
