// Tests for filters, AGC, ADC and the composed double-conversion receiver.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "rf/adc.h"
#include "rf/agc.h"
#include "rf/analyses.h"
#include "rf/filters.h"
#include "rf/receiver_chain.h"

namespace wlansim::rf {
namespace {

TEST(RfFilters, ChebyshevSelectivity) {
  ChebyshevLowpass lpf(7, 1.0, 8.6e6, 80e6);
  EXPECT_NEAR(lpf.magnitude_at(0.0), 1.0, 0.15);
  EXPECT_GT(lpf.magnitude_at(5e6), 0.8);
  // Adjacent channel band must be deeply attenuated.
  EXPECT_LT(dsp::to_db(std::pow(lpf.magnitude_at(12e6), 2.0)), -30.0);
  EXPECT_LT(dsp::to_db(std::pow(lpf.magnitude_at(20e6), 2.0)), -60.0);
}

TEST(RfFilters, CornerBeyondNyquistRejected) {
  EXPECT_THROW(ChebyshevLowpass(5, 0.5, 50e6, 80e6), std::invalid_argument);
  EXPECT_THROW(DcBlockHighpass(2, 0.0, 80e6), std::invalid_argument);
}

TEST(RfFilters, DcBlockRemovesDcKeepsSignal) {
  DcBlockHighpass hpf(2, 120e3, 80e6);
  // DC + 2 MHz tone.
  dsp::CVec in(1 << 14);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const double ang = dsp::kTwoPi * (2e6 / 80e6) * static_cast<double>(i);
    in[i] = dsp::Cplx{0.5, 0.0} + dsp::Cplx{std::cos(ang), std::sin(ang)};
  }
  const dsp::CVec out = hpf.process(in);
  const std::span<const dsp::Cplx> settled(out.data() + 8192, 8192);
  EXPECT_LT(std::norm(tone_amplitude(settled, 0.0)), 1e-4);
  EXPECT_NEAR(tone_power(settled, 2e6 / 80e6), 1.0, 0.02);
}

TEST(Agc, ConvergesToTargetPower) {
  AgcConfig cfg;
  cfg.target_power_dbm = -10.0;
  cfg.initial_gain_db = 0.0;
  cfg.lock_count = 0;  // keep the loop open for this test
  Agc agc(cfg);
  dsp::Rng rng(1);
  // Constant-envelope input at -30 dBm.
  const double a = std::sqrt(dsp::dbm_to_watts(-30.0));
  dsp::CVec in(20000, dsp::Cplx{a, 0.0});
  const dsp::CVec out = agc.process(in);
  const double settled =
      dsp::mean_power(std::span<const dsp::Cplx>(out).subspan(15000));
  EXPECT_NEAR(dsp::watts_to_dbm(settled), -10.0, 0.5);
  EXPECT_NEAR(agc.current_gain_db(), 20.0, 0.5);
}

TEST(Agc, RespectsGainLimits) {
  AgcConfig cfg;
  cfg.target_power_dbm = 0.0;
  cfg.max_gain_db = 10.0;
  cfg.min_gain_db = -10.0;
  cfg.lock_count = 0;
  Agc agc(cfg);
  const double tiny = std::sqrt(dsp::dbm_to_watts(-80.0));
  dsp::CVec weak(20000, dsp::Cplx{tiny, 0.0});
  agc.process(weak);
  EXPECT_NEAR(agc.current_gain_db(), 10.0, 1e-9);  // pegged at max
  agc.reset();
  const double big = std::sqrt(dsp::dbm_to_watts(30.0));
  dsp::CVec loud(20000, dsp::Cplx{big, 0.0});
  agc.process(loud);
  EXPECT_NEAR(agc.current_gain_db(), -10.0, 1e-9);  // pegged at min
}

TEST(Agc, LocksAndHoldsThenUnlocksOnLevelJump) {
  AgcConfig cfg;
  cfg.target_power_dbm = -10.0;
  cfg.initial_gain_db = 20.0;
  cfg.lock_window_db = 2.0;
  cfg.lock_count = 64;
  cfg.unlock_window_db = 10.0;
  Agc agc(cfg);
  const double a = std::sqrt(dsp::dbm_to_watts(-30.0));
  dsp::CVec in(8000, dsp::Cplx{a, 0.0});
  agc.process(in);
  EXPECT_TRUE(agc.locked());
  const double locked_gain = agc.current_gain_db();
  // Small level change: stays locked, gain untouched.
  dsp::CVec in2(4000, dsp::Cplx{a * 1.2, 0.0});
  agc.process(in2);
  EXPECT_TRUE(agc.locked());
  EXPECT_DOUBLE_EQ(agc.current_gain_db(), locked_gain);
  // 20 dB jump: must unlock and re-acquire.
  dsp::CVec in3(12000, dsp::Cplx{a * 10.0, 0.0});
  agc.process(in3);
  EXPECT_NE(agc.current_gain_db(), locked_gain);
}

TEST(Agc, FreezeStopsAdaptation) {
  AgcConfig cfg;
  cfg.initial_gain_db = 5.0;
  Agc agc(cfg);
  agc.freeze(true);
  dsp::CVec in(5000, dsp::Cplx{1.0, 0.0});
  agc.process(in);
  EXPECT_DOUBLE_EQ(agc.current_gain_db(), 5.0);
}

TEST(Adc, QuantizesAndClips) {
  AdcConfig cfg;
  cfg.bits = 4;
  cfg.full_scale = 1.0;
  Adc adc(cfg);
  // Clipping.
  EXPECT_DOUBLE_EQ(adc.quantize(5.0), 1.0);
  EXPECT_DOUBLE_EQ(adc.quantize(-5.0), -1.0);
  // Step size = 2/(2^4 - 1); values snap to the grid.
  const double step = 2.0 / 15.0;
  EXPECT_NEAR(adc.quantize(0.4), std::round(0.4 / step) * step, 1e-12);
}

TEST(Adc, SqnrScalesWithBits) {
  dsp::Rng rng(2);
  dsp::CVec in(20000);
  for (auto& v : in) v = 0.2 * rng.cgaussian(1.0);
  double prev_snr = 0.0;
  for (std::size_t bits : {6u, 8u, 10u}) {
    AdcConfig cfg;
    cfg.bits = bits;
    cfg.full_scale = 1.0;
    Adc adc(cfg);
    const dsp::CVec out = adc.process(in);
    double err = 0.0, sig = 0.0;
    for (std::size_t i = 0; i < in.size(); ++i) {
      err += std::norm(out[i] - in[i]);
      sig += std::norm(in[i]);
    }
    const double snr = dsp::to_db(sig / err);
    EXPECT_GT(snr, prev_snr + 8.0);  // ~12 dB per 2 bits
    prev_snr = snr;
  }
}

TEST(Adc, DisabledIsTransparent) {
  AdcConfig cfg;
  cfg.enabled = false;
  Adc adc(cfg);
  dsp::CVec in = {dsp::Cplx{0.123456789, -0.987654321}};
  EXPECT_EQ(adc.process(in)[0], in[0]);
}

TEST(DoubleConversion, FrontEndGainReported) {
  DoubleConversionConfig cfg;
  DoubleConversionReceiver rx(cfg, dsp::Rng(1));
  EXPECT_DOUBLE_EQ(rx.front_end_gain_db(),
                   cfg.lna_gain_db + cfg.mixer1_gain_db + cfg.mixer2_gain_db);
}

TEST(DoubleConversion, RemovesDcOffsetFromSecondMixer) {
  DoubleConversionConfig cfg;
  cfg.noise_enabled = false;
  cfg.mixer2_dc_offset = {1e-3, 1e-3};  // strong self-mixing product
  DoubleConversionReceiver rx(cfg, dsp::Rng(1));
  dsp::CVec zeros(1 << 15, dsp::Cplx{0.0, 0.0});
  const dsp::CVec out = rx.process(zeros);
  // After the interstage high-pass filters the output holds no DC.
  const std::span<const dsp::Cplx> settled(out.data() + (1 << 14), 1 << 14);
  const dsp::Cplx dc = tone_amplitude(settled, 0.0);
  EXPECT_LT(std::abs(dc), 1e-4);
}

TEST(DoubleConversion, AdjacentChannelRejection) {
  DoubleConversionConfig cfg;
  cfg.noise_enabled = false;
  DoubleConversionReceiver rx(cfg, dsp::Rng(1));
  ToneTestConfig tc;
  tc.num_samples = 1 << 14;
  tc.settle_samples = 1 << 13;
  // In-band 3 MHz vs adjacent-channel 20 MHz tone.
  const double rej = measure_rejection_db(rx, tc, 3e6, 20e6, -60.0);
  EXPECT_GT(rej, 50.0);
}

TEST(DoubleConversion, NoiseSwitchSilencesChain) {
  DoubleConversionConfig cfg;
  cfg.noise_enabled = false;
  cfg.mixer2_dc_offset = {0.0, 0.0};
  DoubleConversionReceiver rx(cfg, dsp::Rng(1));
  dsp::CVec zeros(8192, dsp::Cplx{0.0, 0.0});
  const dsp::CVec out = rx.process(zeros);
  EXPECT_LT(dsp::mean_power(out), 1e-25);
}

TEST(DoubleConversion, CompressionPointMovesWithConfig) {
  // The chain's measured input P1dB must track the LNA's configured P1dB.
  ToneTestConfig tc;
  tc.num_samples = 4096;
  tc.settle_samples = 2048;
  double prev = -100.0;
  for (double p1 : {-30.0, -20.0, -10.0}) {
    DoubleConversionConfig cfg;
    cfg.noise_enabled = false;
    cfg.lna_p1db_in_dbm = p1;
    // Freeze AGC/ADC so the static nonlinearity dominates the measurement.
    cfg.agc.loop_gain = 0.0;
    cfg.agc.initial_gain_db = 0.0;
    cfg.adc.enabled = false;
    DoubleConversionReceiver rx(cfg, dsp::Rng(1));
    const double measured = measure_p1db_in_dbm(rx, tc, p1 - 15.0, p1 + 10.0);
    EXPECT_NEAR(measured, p1, 2.0) << p1;
    EXPECT_GT(measured, prev);
    prev = measured;
  }
}

}  // namespace
}  // namespace wlansim::rf

namespace wlansim::rf {
namespace {

TEST(RfChain, ComposesAndResets) {
  RfChain chain;
  auto* a = chain.emplace<Amplifier>(
      AmplifierConfig{.label = "a", .gain_db = 6.0, .noise_figure_db = 0.0},
      80e6, dsp::Rng(1));
  chain.emplace<Amplifier>(
      AmplifierConfig{.label = "b", .gain_db = 4.0, .noise_figure_db = 0.0},
      80e6, dsp::Rng(2));
  (void)a;
  EXPECT_EQ(chain.size(), 2u);
  dsp::CVec in(100, dsp::Cplx{1e-4, 0.0});
  const dsp::CVec out = chain.process(in);
  // 6 + 4 = 10 dB through the cascade.
  EXPECT_NEAR(dsp::to_db(dsp::mean_power(out) / dsp::mean_power(in)), 10.0,
              0.05);
  chain.reset();  // must not throw and must propagate
  EXPECT_EQ(chain.at(0).name(), "a");
}

}  // namespace
}  // namespace wlansim::rf
