// Parameterized property sweeps: invariants that must hold across whole
// regions of the design space, not just cherry-picked points.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/iir.h"
#include "dsp/mathutil.h"
#include "rf/amplifier.h"
#include "rf/analyses.h"

namespace wlansim::rf {
namespace {

// ---------------------------------------------------------------------------
// Amplifier: measured P1dB tracks the configured value for every
// (model, P1dB, gain) combination.
// ---------------------------------------------------------------------------
using AmpParam = std::tuple<NonlinearityModel, double, double>;

class AmplifierSweep : public ::testing::TestWithParam<AmpParam> {};

TEST_P(AmplifierSweep, MeasuredP1dbTracksConfig) {
  const auto [model, p1db, gain] = GetParam();
  AmplifierConfig cfg;
  cfg.model = model;
  cfg.p1db_in_dbm = p1db;
  cfg.gain_db = gain;
  cfg.noise_figure_db = 0.0;
  Amplifier amp(cfg, 80e6, dsp::Rng(1));

  ToneTestConfig tc;
  tc.num_samples = 4096;
  tc.settle_samples = 64;
  const double measured =
      measure_p1db_in_dbm(amp, tc, p1db - 15.0, p1db + 10.0, 0.25);
  EXPECT_NEAR(measured, p1db, 0.75);

  // Small-signal gain unaffected by the nonlinearity parameters.
  EXPECT_NEAR(measure_gain_db(amp, tc, p1db - 40.0), gain, 0.05);
}

TEST_P(AmplifierSweep, OutputPowerIsMonotoneInDrive) {
  const auto [model, p1db, gain] = GetParam();
  AmplifierConfig cfg;
  cfg.model = model;
  cfg.p1db_in_dbm = p1db;
  cfg.gain_db = gain;
  Amplifier amp(cfg, 80e6, dsp::Rng(1));
  double prev = -1.0;
  for (double in_dbm = p1db - 30.0; in_dbm < p1db + 20.0; in_dbm += 2.0) {
    const double out = amp.am_am(std::sqrt(dsp::dbm_to_watts(in_dbm)));
    EXPECT_GE(out, prev) << in_dbm;
    prev = out;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndLevels, AmplifierSweep,
    ::testing::Combine(::testing::Values(NonlinearityModel::kRapp,
                                         NonlinearityModel::kClippedCubic),
                       ::testing::Values(-30.0, -20.0, -10.0),
                       ::testing::Values(0.0, 15.0)));

// ---------------------------------------------------------------------------
// Chebyshev design space: ripple containment and edge attenuation hold for
// every (order, ripple) pair.
// ---------------------------------------------------------------------------
using ChebParam = std::tuple<std::size_t, double>;

class ChebyshevSweep : public ::testing::TestWithParam<ChebParam> {};

TEST_P(ChebyshevSweep, RippleContainedAndEdgeExact) {
  const auto [order, ripple] = GetParam();
  const double edge = 0.12;
  dsp::BiquadCascade f = dsp::design_chebyshev1_lowpass(order, ripple, edge);
  for (double fr = 0.002; fr < edge - 0.002; fr += 0.004) {
    const double mag_db = dsp::to_db(std::norm(f.response(fr)));
    EXPECT_LE(mag_db, 0.08) << "order " << order << " f " << fr;
    EXPECT_GE(mag_db, -ripple - 0.08) << "order " << order << " f " << fr;
  }
  EXPECT_NEAR(dsp::to_db(std::norm(f.response(edge))), -ripple, 0.15);
}

TEST_P(ChebyshevSweep, StopbandMeetsAnalyticBound) {
  const auto [order, ripple] = GetParam();
  dsp::BiquadCascade f = dsp::design_chebyshev1_lowpass(order, ripple, 0.1);
  // Analytic Chebyshev attenuation at Omega = 2x the edge:
  // A = 10 log10(1 + eps^2 cosh^2(n acosh(2))); the bilinear prewarp makes
  // the digital response at least this steep.
  const double eps2 = std::pow(10.0, ripple / 10.0) - 1.0;
  const double n = static_cast<double>(order);
  const double bound =
      10.0 * std::log10(1.0 + eps2 * std::pow(std::cosh(n * std::acosh(2.0)), 2.0));
  const double att = -dsp::to_db(std::norm(f.response(0.2)));
  EXPECT_GT(att, bound - 0.5) << "order " << order << " ripple " << ripple;
}

INSTANTIATE_TEST_SUITE_P(
    OrdersAndRipples, ChebyshevSweep,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 5, 7, 9),
                       ::testing::Values(0.1, 0.5, 1.0, 3.0)));

}  // namespace
}  // namespace wlansim::rf
