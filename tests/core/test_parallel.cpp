#include "core/parallel.h"

#include <gtest/gtest.h>

#include "core/experiments.h"

namespace wlansim::core {
namespace {

TEST(ParallelBer, MatchesSerialExactly) {
  LinkConfig cfg = default_link_config();
  cfg.snr_db = 16.0;  // low enough that errors occur (nontrivial counters)
  cfg.psdu_bytes = 100;

  WlanLink serial(cfg);
  const BerResult ref = serial.run_ber(8);
  const BerResult par = run_ber_parallel(cfg, 8, 4);

  EXPECT_EQ(par.packets, ref.packets);
  EXPECT_EQ(par.bits, ref.bits);
  EXPECT_EQ(par.bit_errors, ref.bit_errors);
  EXPECT_EQ(par.packets_lost, ref.packets_lost);
  EXPECT_EQ(par.packet_errors, ref.packet_errors);
  EXPECT_NEAR(par.evm_rms_avg, ref.evm_rms_avg, 1e-12);
}

TEST(ParallelBer, ThreadCountInvariant) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 80;
  const BerResult one = run_ber_parallel(cfg, 6, 1);
  const BerResult three = run_ber_parallel(cfg, 6, 3);
  EXPECT_EQ(one.bit_errors, three.bit_errors);
  EXPECT_EQ(one.packets_lost, three.packets_lost);
  EXPECT_NEAR(one.evm_rms_avg, three.evm_rms_avg, 1e-12);
}

TEST(ParallelBer, HandlesFewerPacketsThanThreads) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  const BerResult r = run_ber_parallel(cfg, 2, 16);
  EXPECT_EQ(r.packets, 2u);
}

TEST(ParallelBer, ZeroThreadsMeansHardwareConcurrency) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  const BerResult r = run_ber_parallel(cfg, 3, 0);
  EXPECT_EQ(r.packets, 3u);
}

}  // namespace
}  // namespace wlansim::core
