// The adaptive Monte-Carlo engine's determinism contract (core/parallel.h):
// results are a pure function of (configs, rule) — independent of thread
// count, scheduling, wave sizing, and TX-scene memoization — and with the
// CI test disabled every point is bit-identical to the fixed-budget
// sweep_ber_parallel.
#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/parallel.h"

namespace wlansim::core {
namespace {

void expect_identical(const BerResult& a, const BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);  // exact, not approximate
}

std::vector<LinkConfig> waterfall(std::initializer_list<double> snrs) {
  LinkConfig base = default_link_config();
  base.psdu_bytes = 60;
  std::vector<LinkConfig> points;
  for (const double snr : snrs) {
    LinkConfig c = base;
    c.snr_db = snr;
    points.push_back(c);
  }
  return points;
}

sim::StoppingRule small_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.35;
  rule.min_errors = 25;
  rule.min_packets = 8;
  rule.max_packets = 40;
  return rule;
}

TEST(AdaptiveSweep, FixedBudgetBitIdenticalToSweepBerParallel) {
  const auto points = waterfall({14.0, 18.0, 24.0});
  sim::StoppingRule fixed;
  fixed.target_rel_ci = 0.0;  // CI test off: a pure 18-packet budget
  fixed.max_packets = 18;

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SweepOptions opts;
    opts.threads = threads;
    const auto adaptive = sweep_ber_adaptive(points, fixed, opts);
    const auto reference = sweep_ber_parallel(points, 18, threads);
    ASSERT_EQ(adaptive.size(), reference.size());
    for (std::size_t k = 0; k < adaptive.size(); ++k) {
      SCOPED_TRACE("point " + std::to_string(k));
      expect_identical(adaptive[k], reference[k]);
      EXPECT_FALSE(adaptive[k].converged);
      // Both engines fill the CI stat from identical counters at the same
      // default confidence, so even the derived field must match exactly.
      EXPECT_EQ(adaptive[k].ber_ci_rel, reference[k].ber_ci_rel);
    }
  }
}

TEST(AdaptiveSweep, ThreadCountInvariance) {
  const auto points = waterfall({12.0, 16.0, 30.0});
  const sim::StoppingRule rule = small_rule();

  SweepOptions opts1;
  opts1.threads = 1;
  const auto ref = sweep_ber_adaptive(points, rule, opts1);
  ASSERT_EQ(ref.size(), points.size());
  for (const std::size_t threads : {2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    SweepOptions opts;
    opts.threads = threads;
    const auto got = sweep_ber_adaptive(points, rule, opts);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      SCOPED_TRACE("point " + std::to_string(k));
      expect_identical(got[k], ref[k]);
      EXPECT_EQ(got[k].converged, ref[k].converged);
      EXPECT_EQ(got[k].ber_ci_rel, ref[k].ber_ci_rel);
    }
  }
}

TEST(AdaptiveSweep, MemoizationInvariance) {
  const auto points = waterfall({12.0, 16.0, 30.0});
  const sim::StoppingRule rule = small_rule();

  SweepOptions on;
  on.threads = 2;
  on.memoize_tx = true;
  SweepOptions off = on;
  off.memoize_tx = false;
  const auto a = sweep_ber_adaptive(points, rule, on);
  const auto b = sweep_ber_adaptive(points, rule, off);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    SCOPED_TRACE("point " + std::to_string(k));
    expect_identical(a[k], b[k]);
    EXPECT_EQ(a[k].converged, b[k].converged);
  }
}

TEST(AdaptiveSweep, StopIndexIsPrefixRuleDecision) {
  // A noisy point must stop early (plenty of errors -> CI converges) at a
  // quantum boundary; a clean point never collects min_errors and runs to
  // the cap.
  const auto points = waterfall({10.0, 35.0});
  const sim::StoppingRule rule = small_rule();
  const auto got = sweep_ber_adaptive(points, rule, SweepOptions{});
  ASSERT_EQ(got.size(), 2u);

  EXPECT_TRUE(got[0].converged);
  EXPECT_LT(got[0].packets, rule.max_packets);
  EXPECT_EQ(got[0].packets % 8, 0u);
  EXPECT_GE(got[0].packets, rule.min_packets);
  EXPECT_GE(got[0].bit_errors, rule.min_errors);
  EXPECT_LE(got[0].ber_ci_rel, rule.target_rel_ci);

  EXPECT_FALSE(got[1].converged);
  EXPECT_EQ(got[1].packets, rule.max_packets);

  // The prefix decision replays exactly on the single-point engine.
  const BerResult single = run_ber_adaptive(points[0], rule);
  expect_identical(single, got[0]);
}

TEST(AdaptiveSweep, SinglePointMatchesSerialPrefix) {
  // The stop index consumed the in-order packet prefix, so rerunning that
  // many packets serially must reproduce every counter bit for bit.
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  cfg.snr_db = 12.0;
  const sim::StoppingRule rule = small_rule();
  const BerResult adaptive = run_ber_adaptive(cfg, rule, 2);
  WlanLink link(cfg);
  expect_identical(adaptive, link.run_ber(adaptive.packets));
}

TEST(AdaptiveSweep, RejectsZeroCap) {
  const sim::StoppingRule bad{.max_packets = 0};
  LinkConfig cfg = default_link_config();
  EXPECT_THROW((void)run_ber_adaptive(cfg, bad), std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::core
