#include "core/cliargs.h"

#include <gtest/gtest.h>

namespace wlansim::core {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs::parse(static_cast<int>(v.size()), v.data(), 0);
}

TEST(CliArgs, ParsesKeyValuePairs) {
  const CliArgs a = parse({"--rate", "24", "--snr", "18.5", "--csv", "x.csv"});
  EXPECT_EQ(a.get_long("rate", 0), 24);
  EXPECT_DOUBLE_EQ(a.get_double("snr", 0.0), 18.5);
  EXPECT_EQ(a.get_string("csv", ""), "x.csv");
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const CliArgs a = parse({"--rate", "6"});
  EXPECT_EQ(a.get_long("packets", 20), 20);
  EXPECT_DOUBLE_EQ(a.get_double("snr", 25.0), 25.0);
  EXPECT_EQ(a.get_string("csv", "none"), "none");
  EXPECT_FALSE(a.get_bool("verbose"));
}

TEST(CliArgs, BooleanFlags) {
  const CliArgs a = parse({"--no-snr", "--rate", "12", "--quiet"});
  EXPECT_TRUE(a.get_bool("no-snr"));
  EXPECT_TRUE(a.get_bool("quiet"));
  EXPECT_EQ(a.get_long("rate", 0), 12);
}

TEST(CliArgs, NegativeNumbersAreValues) {
  const CliArgs a = parse({"--power-dbm", "-65", "--p1db", "-20.5"});
  EXPECT_DOUBLE_EQ(a.get_double("power-dbm", 0.0), -65.0);
  EXPECT_DOUBLE_EQ(a.get_double("p1db", 0.0), -20.5);
}

TEST(CliArgs, RejectsMalformedInput) {
  EXPECT_THROW(parse({"rate", "24"}), std::invalid_argument);
  EXPECT_THROW(parse({"--rate", "24", "--rate", "6"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(CliArgs, RejectsBadNumbers) {
  const CliArgs a = parse({"--rate", "abc", "--snr", "1.5x"});
  EXPECT_THROW(a.get_long("rate", 0), std::invalid_argument);
  EXPECT_THROW(a.get_double("snr", 0.0), std::invalid_argument);
}

TEST(CliArgs, TracksUnusedKeys) {
  const CliArgs a = parse({"--rate", "24", "--typo-key", "5"});
  EXPECT_EQ(a.get_long("rate", 0), 24);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo-key");
}

}  // namespace
}  // namespace wlansim::core
