#include "core/cliargs.h"

#include <gtest/gtest.h>

#include "core/surrogate.h"

namespace wlansim::core {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs::parse(static_cast<int>(v.size()), v.data(), 0);
}

TEST(CliArgs, ParsesKeyValuePairs) {
  const CliArgs a = parse({"--rate", "24", "--snr", "18.5", "--csv", "x.csv"});
  EXPECT_EQ(a.get_long("rate", 0), 24);
  EXPECT_DOUBLE_EQ(a.get_double("snr", 0.0), 18.5);
  EXPECT_EQ(a.get_string("csv", ""), "x.csv");
}

TEST(CliArgs, FallbacksWhenAbsent) {
  const CliArgs a = parse({"--rate", "6"});
  EXPECT_EQ(a.get_long("packets", 20), 20);
  EXPECT_DOUBLE_EQ(a.get_double("snr", 25.0), 25.0);
  EXPECT_EQ(a.get_string("csv", "none"), "none");
  EXPECT_FALSE(a.get_bool("verbose"));
}

TEST(CliArgs, BooleanFlags) {
  const CliArgs a = parse({"--no-snr", "--rate", "12", "--quiet"});
  EXPECT_TRUE(a.get_bool("no-snr"));
  EXPECT_TRUE(a.get_bool("quiet"));
  EXPECT_EQ(a.get_long("rate", 0), 12);
}

TEST(CliArgs, NegativeNumbersAreValues) {
  const CliArgs a = parse({"--power-dbm", "-65", "--p1db", "-20.5"});
  EXPECT_DOUBLE_EQ(a.get_double("power-dbm", 0.0), -65.0);
  EXPECT_DOUBLE_EQ(a.get_double("p1db", 0.0), -20.5);
}

TEST(CliArgs, RejectsMalformedInput) {
  EXPECT_THROW(parse({"rate", "24"}), std::invalid_argument);
  EXPECT_THROW(parse({"--rate", "24", "--rate", "6"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(CliArgs, RejectsBadNumbers) {
  const CliArgs a = parse({"--rate", "abc", "--snr", "1.5x"});
  EXPECT_THROW(a.get_long("rate", 0), std::invalid_argument);
  EXPECT_THROW(a.get_double("snr", 0.0), std::invalid_argument);
}

TEST(CliArgs, TracksUnusedKeys) {
  const CliArgs a = parse({"--rate", "24", "--typo-key", "5"});
  EXPECT_EQ(a.get_long("rate", 0), 24);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo-key");
}

TEST(StoppingRuleFromArgs, AbsentWithoutAnyAdaptiveFlag) {
  const CliArgs a = parse({"--rate", "24", "--snr", "18"});
  EXPECT_FALSE(stopping_rule_from_args(a).has_value());
}

TEST(StoppingRuleFromArgs, AnySingleFlagEnablesWithSharedDefaults) {
  for (const char* flag : {"target-ci", "min-errors", "max-packets",
                           "min-packets"}) {
    const CliArgs a = parse({(std::string("--") + flag).c_str(), "12"});
    const auto rule = stopping_rule_from_args(a);
    ASSERT_TRUE(rule.has_value()) << flag;
  }
  const CliArgs a = parse({"--target-ci", "0.2"});
  const auto rule = stopping_rule_from_args(a);
  ASSERT_TRUE(rule.has_value());
  EXPECT_DOUBLE_EQ(rule->target_rel_ci, 0.2);
  EXPECT_EQ(rule->min_errors, 100u);
  EXPECT_EQ(rule->min_packets, 8u);
  EXPECT_EQ(rule->max_packets, 10000u);
}

TEST(StoppingRuleFromArgs, AllFieldsParse) {
  const CliArgs a = parse({"--target-ci", "0.3", "--min-errors", "7",
                           "--min-packets", "4", "--max-packets", "64"});
  const auto rule = stopping_rule_from_args(a);
  ASSERT_TRUE(rule.has_value());
  EXPECT_DOUBLE_EQ(rule->target_rel_ci, 0.3);
  EXPECT_EQ(rule->min_errors, 7u);
  EXPECT_EQ(rule->min_packets, 4u);
  EXPECT_EQ(rule->max_packets, 64u);
}

TEST(SurrogateOptionsFromArgs, WiresDirAxisRuleAndThreads) {
  const CliArgs a = parse({"--calib-dir", "/tmp/x", "--target-ci", "0.25"});
  const auto rule = stopping_rule_from_args(a);
  const SurrogateOptions opts = surrogate_options_from_args(
      a, sim::SurrogateAxis::kRxPowerDbm, rule, 3);
  EXPECT_EQ(opts.store_dir, std::filesystem::path("/tmp/x"));
  EXPECT_EQ(opts.axis, sim::SurrogateAxis::kRxPowerDbm);
  EXPECT_DOUBLE_EQ(opts.rule.target_rel_ci, 0.25);
  EXPECT_EQ(opts.threads, 3u);

  // No --calib-dir: the default-store sentinel (empty path) survives.
  const CliArgs b = parse({"--rate", "24"});
  const SurrogateOptions defaults = surrogate_options_from_args(
      b, sim::SurrogateAxis::kSnrDb, std::nullopt, 0);
  EXPECT_TRUE(defaults.store_dir.empty());
  EXPECT_DOUBLE_EQ(defaults.rule.target_rel_ci,
                   sim::StoppingRule{}.target_rel_ci);
}

}  // namespace
}  // namespace wlansim::core
