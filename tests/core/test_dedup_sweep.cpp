// The deduplicated pooled sweep (core::sweep_ber_deduped): axis
// quantization, scatter back to the query list, warm/cold accounting, the
// pooled-pass bit-identity contract, and the no-store mode.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/experiments.h"
#include "core/parallel.h"
#include "core/surrogate.h"

namespace wlansim::core {
namespace {

namespace fs = std::filesystem;

fs::path test_store(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-deduptest" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

LinkConfig cheap_config(double snr) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  cfg.snr_db = snr;
  return cfg;
}

sim::StoppingRule small_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.35;
  rule.min_errors = 25;
  rule.min_packets = 8;
  rule.max_packets = 40;
  return rule;
}

DedupOptions dedup_opts(const fs::path& dir, double bin = 1.0) {
  DedupOptions opts;
  opts.surrogate.store_dir = dir;
  opts.surrogate.rule = small_rule();
  opts.bin_width_db = bin;
  return opts;
}

void expect_identical(const BerResult& a, const BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.ber(), b.ber());
  EXPECT_EQ(a.per(), b.per());
  EXPECT_EQ(a.ber_ci_rel, b.ber_ci_rel);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);
}

TEST(QuantizeAxis, SnapsToNearestBin) {
  EXPECT_DOUBLE_EQ(quantize_axis(7.4, 0.5), 7.5);
  EXPECT_DOUBLE_EQ(quantize_axis(7.1, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantize_axis(-7.4, 0.5), -7.5);
  EXPECT_DOUBLE_EQ(quantize_axis(3.0, 1.0), 3.0);
  // Ties round away from zero, symmetrically.
  EXPECT_DOUBLE_EQ(quantize_axis(0.25, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(quantize_axis(-0.25, 0.5), -0.5);
}

TEST(QuantizeAxis, NonPositiveBinDisables) {
  EXPECT_DOUBLE_EQ(quantize_axis(7.37, 0.0), 7.37);
  EXPECT_DOUBLE_EQ(quantize_axis(7.37, -1.0), 7.37);
}

TEST(DedupSweep, CollapsesToDistinctBinsAndScatters) {
  // 8 queries in two 1-dB bins: the pooled pass must run exactly 2 points
  // and every query must get its own bin's result.
  std::vector<LinkConfig> configs;
  for (const double snr : {6.9, 7.1, 7.2, 6.8, 10.1, 9.9, 10.4, 9.6}) {
    configs.push_back(cheap_config(snr));
  }
  DedupStats stats;
  const auto out =
      sweep_ber_deduped(configs, dedup_opts(test_store("scatter")), &stats);
  ASSERT_EQ(out.size(), configs.size());
  EXPECT_EQ(stats.queries, 8u);
  EXPECT_EQ(stats.distinct, 2u);
  EXPECT_EQ(stats.cold, 2u);
  EXPECT_EQ(stats.warm, 0u);
  // All members of a bin share the bin representative's result exactly.
  for (int i : {1, 2, 3}) expect_identical(out[0], out[i]);
  for (int i : {5, 6, 7}) expect_identical(out[4], out[i]);
  // The two bins measured genuinely different points.
  EXPECT_GT(out[0].ber(), out[4].ber());
}

TEST(DedupSweep, ColdIsBitIdenticalToDirectAdaptive) {
  // The contract: a cold key's result equals run_ber_adaptive on the
  // bin-center config under the same rule.
  const auto opts = dedup_opts(test_store("bitident"));
  std::vector<LinkConfig> configs{cheap_config(7.3), cheap_config(9.8)};
  const auto out = sweep_ber_deduped(configs, opts);

  const BerResult direct7 =
      run_ber_adaptive(cheap_config(7.0), opts.surrogate.rule);
  const BerResult direct10 =
      run_ber_adaptive(cheap_config(10.0), opts.surrogate.rule);
  expect_identical(out[0], direct7);
  expect_identical(out[1], direct10);
}

TEST(DedupSweep, SecondCallServesWarmFromStore) {
  const auto opts = dedup_opts(test_store("warm"));
  std::vector<LinkConfig> configs{cheap_config(7.0), cheap_config(7.4),
                                  cheap_config(10.0)};
  DedupStats cold_stats;
  const auto cold = sweep_ber_deduped(configs, opts, &cold_stats);
  EXPECT_EQ(cold_stats.cold, 2u);
  EXPECT_EQ(cold_stats.warm, 0u);

  DedupStats warm_stats;
  const auto warm = sweep_ber_deduped(configs, opts, &warm_stats);
  EXPECT_EQ(warm_stats.cold, 0u);
  EXPECT_EQ(warm_stats.warm, 2u);
  for (std::size_t i = 0; i < warm.size(); ++i) {
    EXPECT_TRUE(warm[i].from_surrogate);
    EXPECT_EQ(warm[i].packets, 0u);
    // Knot-exact answers: the backfilled knot sits exactly at the bin, so
    // the curve returns the measured rates bit-for-bit.
    EXPECT_EQ(warm[i].ber(), cold[i].ber());
    EXPECT_EQ(warm[i].per(), cold[i].per());
  }
}

TEST(DedupSweep, UseStoreFalseNeverPersists) {
  const fs::path dir = test_store("nostore");
  DedupOptions opts = dedup_opts(dir);
  opts.use_store = false;
  std::vector<LinkConfig> configs{cheap_config(7.0), cheap_config(7.0)};

  DedupStats stats;
  const auto out = sweep_ber_deduped(configs, opts, &stats);
  EXPECT_EQ(stats.distinct, 1u);
  EXPECT_EQ(stats.cold, 1u);
  expect_identical(out[0], out[1]);
  EXPECT_FALSE(out[0].from_surrogate);
  // Nothing written: a rerun is cold again and the directory stays empty.
  EXPECT_TRUE(fs::is_empty(dir));
  DedupStats again;
  sweep_ber_deduped(configs, opts, &again);
  EXPECT_EQ(again.cold, 1u);
}

TEST(DedupSweep, MixedFingerprintsKeySeparateCurves) {
  // Same SNR bin, different interferer level: distinct fingerprints, so
  // two distinct keys (and two stored curves) even though the axis matches.
  LinkConfig clean = cheap_config(10.0);
  LinkConfig jammed = cheap_config(10.0);
  jammed.interferer = channel::InterfererConfig{.offset_hz = 20e6,
                                                .level_db = 10.0};
  std::vector<LinkConfig> configs{clean, jammed, clean};

  DedupStats stats;
  const auto out = sweep_ber_deduped(
      configs, dedup_opts(test_store("mixedfp")), &stats);
  EXPECT_EQ(stats.distinct, 2u);
  expect_identical(out[0], out[2]);
  EXPECT_GE(out[1].ber(), out[0].ber());
}

TEST(DedupSweep, RejectsNonFingerprintableConfigs) {
  LinkConfig cfg = cheap_config(10.0);
  cfg.snr_db.reset();  // kSnrDb axis requires a finite axis value
  EXPECT_THROW(
      sweep_ber_deduped(std::vector<LinkConfig>{cfg},
                        dedup_opts(test_store("badaxis"))),
      std::invalid_argument);
}

TEST(DedupSweep, EmptyInputIsANoop) {
  DedupStats stats;
  const auto out = sweep_ber_deduped(std::vector<LinkConfig>{},
                                     dedup_opts(test_store("empty")), &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.distinct, 0u);
}

}  // namespace
}  // namespace wlansim::core
