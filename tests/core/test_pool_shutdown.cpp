// ThreadPool graceful shutdown: in-flight work drains to completion,
// post-shutdown submits are rejected without invoking anything, and the
// call is idempotent / safe from a concurrent thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/thread_pool.h"

namespace wlansim::core {
namespace {

TEST(PoolShutdown, IdleShutdownRejectsLaterSubmits) {
  ThreadPool pool(4);
  EXPECT_FALSE(pool.is_shutdown());
  pool.shutdown();
  EXPECT_TRUE(pool.is_shutdown());

  std::atomic<int> invoked{0};
  const bool ran =
      pool.parallel_for(64, 4, [&](std::size_t, std::size_t) { ++invoked; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(invoked.load(), 0);
}

TEST(PoolShutdown, ShutdownWhileBusyDrainsTheFullRange) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 200;
  std::atomic<std::size_t> done{0};
  std::atomic<bool> started{false};

  std::thread submitter([&] {
    const bool ran = pool.parallel_for(kItems, 1, [&](std::size_t,
                                                      std::size_t) {
      started.store(true);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++done;
    });
    EXPECT_TRUE(ran);
  });

  while (!started.load()) std::this_thread::yield();
  pool.shutdown();  // must wait for the in-flight range, not interrupt it

  // After shutdown() returns, every index has run exactly once.
  EXPECT_EQ(done.load(), kItems);
  submitter.join();

  std::atomic<int> late{0};
  EXPECT_FALSE(
      pool.parallel_for(8, 1, [&](std::size_t, std::size_t) { ++late; }));
  EXPECT_EQ(late.load(), 0);
}

TEST(PoolShutdown, IdempotentAndConcurrent) {
  ThreadPool pool(2);
  std::thread a([&] { pool.shutdown(); });
  std::thread b([&] { pool.shutdown(); });
  a.join();
  b.join();
  pool.shutdown();  // third call on a quiescent pool: no-op
  EXPECT_TRUE(pool.is_shutdown());
}

TEST(PoolShutdown, InlinePoolDrainsToo) {
  ThreadPool pool(1);  // size-1 pool runs inline on the caller
  std::atomic<int> n{0};
  EXPECT_TRUE(pool.parallel_for(5, 1, [&](std::size_t, std::size_t) { ++n; }));
  EXPECT_EQ(n.load(), 5);
  pool.shutdown();
  EXPECT_FALSE(pool.parallel_for(5, 1, [&](std::size_t, std::size_t) { ++n; }));
  EXPECT_EQ(n.load(), 5);
}

}  // namespace
}  // namespace wlansim::core
