// The surrogate-backed BER drivers (core/surrogate.h): fingerprint keying,
// the cold-path bit-identity contract (fallback MC == direct adaptive
// sweep), store backfill/warm hits, miss policies, and the per-call store
// view that re-observes deleted files.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/experiments.h"
#include "core/fingerprint.h"
#include "core/parallel.h"
#include "core/surrogate.h"

namespace wlansim::core {
namespace {

namespace fs = std::filesystem;

fs::path test_store(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-surrtest" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

LinkConfig cheap_config(double snr) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  cfg.snr_db = snr;
  return cfg;
}

std::vector<LinkConfig> waterfall(std::initializer_list<double> snrs) {
  std::vector<LinkConfig> points;
  for (const double snr : snrs) points.push_back(cheap_config(snr));
  return points;
}

sim::StoppingRule small_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.35;
  rule.min_errors = 25;
  rule.min_packets = 8;
  rule.max_packets = 40;
  return rule;
}

SurrogateOptions opts_with(const fs::path& dir) {
  SurrogateOptions opts;
  opts.store_dir = dir;
  opts.rule = small_rule();
  return opts;
}

void expect_identical(const BerResult& a, const BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.ber(), b.ber());
  EXPECT_EQ(a.per(), b.per());
  EXPECT_EQ(a.ber_ci_rel, b.ber_ci_rel);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(SurrogateFingerprint, InvariantAlongAxisOnly) {
  const std::string key10 =
      surrogate_fingerprint(cheap_config(10.0), sim::SurrogateAxis::kSnrDb);
  const std::string key14 =
      surrogate_fingerprint(cheap_config(14.0), sim::SurrogateAxis::kSnrDb);
  ASSERT_FALSE(key10.empty());
  // The whole point of the curve key: sweep points share it.
  EXPECT_EQ(key10, key14);

  // Any front-end or framing field forces a different curve.
  LinkConfig hot = cheap_config(10.0);
  hot.rf.lna_p1db_in_dbm -= 10.0;
  EXPECT_NE(surrogate_fingerprint(hot, sim::SurrogateAxis::kSnrDb), key10);
  LinkConfig big = cheap_config(10.0);
  big.psdu_bytes = 61;
  EXPECT_NE(surrogate_fingerprint(big, sim::SurrogateAxis::kSnrDb), key10);

  // But the plain link fingerprint DOES see the axis value (sanity: the
  // canonicalization is specific to the surrogate key).
  EXPECT_NE(link_fingerprint(cheap_config(10.0)),
            link_fingerprint(cheap_config(14.0)));
}

TEST(SurrogateFingerprint, AxisTagSeparatesCurveFamilies) {
  LinkConfig cfg = cheap_config(10.0);
  cfg.rx_power_dbm = -60.0;
  const std::string snr_key =
      surrogate_fingerprint(cfg, sim::SurrogateAxis::kSnrDb);
  const std::string pwr_key =
      surrogate_fingerprint(cfg, sim::SurrogateAxis::kRxPowerDbm);
  ASSERT_FALSE(snr_key.empty());
  ASSERT_FALSE(pwr_key.empty());
  // Same config, different swept axis: different curve, even though the
  // canonicalized field values could coincide.
  EXPECT_NE(snr_key, pwr_key);

  // And the power-axis key is invariant along power.
  LinkConfig quieter = cfg;
  quieter.rx_power_dbm = -80.0;
  EXPECT_EQ(surrogate_fingerprint(quieter, sim::SurrogateAxis::kRxPowerDbm),
            pwr_key);
}

TEST(SurrogateFingerprint, UnsetAxisValueIsNotFingerprintable) {
  LinkConfig cfg = cheap_config(10.0);
  cfg.snr_db.reset();
  EXPECT_TRUE(surrogate_fingerprint(cfg, sim::SurrogateAxis::kSnrDb).empty());
}

// ---------------------------------------------------------------------------
// Sweep drivers
// ---------------------------------------------------------------------------

TEST(SurrogateSweep, ColdFallbackBitIdenticalToAdaptiveSweep) {
  const SurrogateOptions opts = opts_with(test_store("cold"));
  const auto points = waterfall({10.0, 11.0, 12.0});

  const auto surr = sweep_ber_surrogate(points, opts);
  const auto direct = sweep_ber_adaptive(points, opts.rule);
  ASSERT_EQ(surr.size(), direct.size());
  for (std::size_t k = 0; k < surr.size(); ++k) {
    SCOPED_TRACE("point " + std::to_string(k));
    EXPECT_FALSE(surr[k].from_surrogate);  // store was cold: this IS the MC
    expect_identical(surr[k], direct[k]);
  }
}

TEST(SurrogateSweep, BackfillWarmsTheStore) {
  const SurrogateOptions opts = opts_with(test_store("warm"));
  const auto points = waterfall({10.0, 11.0, 12.0});

  const auto cold = sweep_ber_surrogate(points, opts);
  const auto warm = sweep_ber_surrogate(points, opts);
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t k = 0; k < warm.size(); ++k) {
    SCOPED_TRACE("point " + std::to_string(k));
    EXPECT_TRUE(warm[k].from_surrogate);
    EXPECT_EQ(warm[k].packets, 0u);  // no packets were simulated
    // Knot queries return the stored measurement exactly, so the warm
    // answer equals the cold MC answer bit for bit.
    EXPECT_EQ(warm[k].ber(), cold[k].ber());
    EXPECT_EQ(warm[k].per(), cold[k].per());
    EXPECT_EQ(warm[k].ber_ci_rel, cold[k].ber_ci_rel);
    EXPECT_EQ(warm[k].evm_rms_avg, cold[k].evm_rms_avg);
  }
}

TEST(SurrogateSweep, InterpolatedPointRidesTheCurve) {
  const SurrogateOptions opts = opts_with(test_store("interp"));
  (void)sweep_ber_surrogate(waterfall({10.0, 11.0}), opts);

  const BerResult mid = run_ber_surrogate(cheap_config(10.5), opts);
  EXPECT_TRUE(mid.from_surrogate);
  const BerResult lo = run_ber_surrogate(cheap_config(10.0), opts);
  const BerResult hi = run_ber_surrogate(cheap_config(11.0), opts);
  // Monotone interpolation: the midpoint BER sits between its knots.
  EXPECT_LE(mid.ber(), std::max(lo.ber(), hi.ber()));
  EXPECT_GE(mid.ber(), std::min(lo.ber(), hi.ber()));
  // Conservative CI: no tighter than the looser bracketing knot.
  EXPECT_EQ(mid.ber_ci_rel, std::max(lo.ber_ci_rel, hi.ber_ci_rel));
}

TEST(SurrogateSweep, DeletedStoreIsObservedAndRefilledIdentically) {
  const fs::path dir = test_store("deleted");
  const SurrogateOptions opts = opts_with(dir);
  const auto points = waterfall({10.0, 11.0});

  const auto first = sweep_ber_surrogate(points, opts);
  // Nuke the store mid-run (e.g. a cache janitor). The default per-call
  // store view must observe the deletion as a miss...
  fs::remove_all(dir);
  const auto refilled = sweep_ber_surrogate(points, opts);
  ASSERT_EQ(refilled.size(), first.size());
  for (std::size_t k = 0; k < refilled.size(); ++k) {
    SCOPED_TRACE("point " + std::to_string(k));
    EXPECT_FALSE(refilled[k].from_surrogate);
    // ...and the fallback MC is a pure function of (config, rule), so the
    // re-measurement is bit-identical to the original cold run.
    expect_identical(refilled[k], first[k]);
  }
  // And the backfill re-warmed the store.
  EXPECT_TRUE(run_ber_surrogate(points[0], opts).from_surrogate);
}

TEST(SurrogateSweep, PersistentCacheOptsOutOfPerCallView) {
  const fs::path dir = test_store("cached");
  SurrogateOptions opts = opts_with(dir);
  sim::BerSurrogate cache{sim::CalibrationStore(dir)};
  opts.cache = &cache;

  const auto points = waterfall({10.0, 11.0});
  (void)sweep_ber_surrogate(points, opts);
  fs::remove_all(dir);
  // The long-lived cache still answers from memory — the documented
  // trade-off of SurrogateOptions::cache.
  const auto res = sweep_ber_surrogate(points, opts);
  for (const BerResult& r : res) EXPECT_TRUE(r.from_surrogate);
}

TEST(SurrogateSweep, ErrorPolicyThrowsOnMiss) {
  SurrogateOptions opts = opts_with(test_store("error"));
  opts.miss_policy = SurrogateMissPolicy::kError;
  EXPECT_THROW((void)run_ber_surrogate(cheap_config(10.0), opts),
               std::runtime_error);
}

TEST(SurrogateSweep, CalibratePolicyAnswersEverythingFromTheCurve) {
  SurrogateOptions opts = opts_with(test_store("autocal"));
  opts.miss_policy = SurrogateMissPolicy::kCalibrate;
  opts.grid_step = 1.0;
  opts.grid_pad = 0.0;

  // Off-grid query points: the auto-grid calibrates knots around them and
  // every answer comes back interpolated.
  const auto res = sweep_ber_surrogate(waterfall({10.3, 11.6}), opts);
  ASSERT_EQ(res.size(), 2u);
  for (const BerResult& r : res) {
    EXPECT_TRUE(r.from_surrogate);
    EXPECT_GT(r.ber(), 0.0);
  }
}

TEST(SurrogateSweep, RuleMismatchIsAMiss) {
  const fs::path dir = test_store("rulemiss");
  SurrogateOptions opts = opts_with(dir);
  (void)sweep_ber_surrogate(waterfall({10.0}), opts);
  ASSERT_TRUE(run_ber_surrogate(cheap_config(10.0), opts).from_surrogate);

  // A different stopping rule makes different CI claims: the stored curve
  // must not answer for it.
  SurrogateOptions tighter = opts;
  tighter.rule.target_rel_ci = 0.10;
  tighter.rule.max_packets = 48;
  const BerResult r = run_ber_surrogate(cheap_config(10.0), tighter);
  EXPECT_FALSE(r.from_surrogate);
  expect_identical(r, run_ber_adaptive(cheap_config(10.0), tighter.rule));
}

TEST(SurrogateSweep, MixedFingerprintsRejected) {
  const SurrogateOptions opts = opts_with(test_store("mixed"));
  std::vector<LinkConfig> points = waterfall({10.0, 11.0});
  points[1].psdu_bytes = 61;  // differs off-axis: not one curve
  EXPECT_THROW((void)sweep_ber_surrogate(points, opts),
               std::invalid_argument);

  LinkConfig unset = cheap_config(10.0);
  unset.snr_db.reset();
  EXPECT_THROW((void)run_ber_surrogate(unset, opts), std::invalid_argument);
}

TEST(SurrogateSweep, EmptySweepIsEmpty) {
  EXPECT_TRUE(
      sweep_ber_surrogate({}, opts_with(test_store("empty"))).empty());
}

// ---------------------------------------------------------------------------
// calibrate_ber_surrogate
// ---------------------------------------------------------------------------

TEST(Calibrate, GridKnotsLandOnStepMultiplesAndAnswerExactly) {
  SurrogateOptions opts = opts_with(test_store("grid"));
  opts.grid_step = 1.0;
  opts.grid_pad = 0.0;

  const LinkConfig base = cheap_config(10.0);
  const sim::CalibrationCurve curve =
      calibrate_ber_surrogate(base, 10.0, 12.0, opts);
  ASSERT_EQ(curve.points.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.points[0].x, 10.0);
  EXPECT_DOUBLE_EQ(curve.points[2].x, 12.0);
  EXPECT_TRUE(curve.covers(11.5));

  // Every knot is an adaptive-MC measurement: querying it through the
  // store must reproduce the direct measurement exactly.
  SurrogateOptions query = opts;
  query.miss_policy = SurrogateMissPolicy::kError;
  const BerResult s = run_ber_surrogate(cheap_config(11.0), query);
  const BerResult mc = run_ber_adaptive(cheap_config(11.0), opts.rule);
  EXPECT_TRUE(s.from_surrogate);
  EXPECT_EQ(s.ber(), mc.ber());
  EXPECT_EQ(s.per(), mc.per());
  EXPECT_EQ(s.ber_ci_rel, mc.ber_ci_rel);
}

TEST(Calibrate, ExtendsAnExistingCurveInsteadOfRemeasuring) {
  SurrogateOptions opts = opts_with(test_store("extend"));
  opts.grid_step = 1.0;
  opts.grid_pad = 0.0;
  const LinkConfig base = cheap_config(10.0);

  const auto first = calibrate_ber_surrogate(base, 10.0, 11.0, opts);
  ASSERT_EQ(first.points.size(), 2u);
  const auto extended = calibrate_ber_surrogate(base, 10.0, 13.0, opts);
  ASSERT_EQ(extended.points.size(), 4u);
  // Shared knots kept their original measurements bit for bit.
  EXPECT_EQ(extended.points[0].ber, first.points[0].ber);
  EXPECT_EQ(extended.points[1].ber, first.points[1].ber);
  EXPECT_EQ(extended.points[0].bits, first.points[0].bits);
}

TEST(Calibrate, RejectsBadInput) {
  SurrogateOptions opts = opts_with(test_store("badcal"));
  const LinkConfig base = cheap_config(10.0);
  opts.grid_step = 0.0;
  EXPECT_THROW((void)calibrate_ber_surrogate(base, 10.0, 12.0, opts),
               std::invalid_argument);
  opts.grid_step = 1.0;
  EXPECT_THROW((void)calibrate_ber_surrogate(base, 12.0, 10.0, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::core
