// The lockstep packet-wave engine's bit-identity contract: every lane of
// WlanLink::run_packet_wave equals the scalar per-packet path exactly, so
// SweepOptions::batch_width is a pure throughput knob — results at width 8
// EXPECT_EQ those at width 1 for any thread count, with and without
// TX-scene memoization.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiments.h"
#include "core/packet_batch.h"
#include "core/parallel.h"

namespace wlansim::core {
namespace {

void expect_identical(const BerResult& a, const BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);  // exact, not approximate
  EXPECT_EQ(a.ber_ci_rel, b.ber_ci_rel);
}

void expect_identical(const PacketResult& a, const PacketResult& b) {
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.evm_rms, b.evm_rms);
  EXPECT_EQ(a.cfo_norm, b.cfo_norm);
}

std::vector<LinkConfig> waterfall(std::initializer_list<double> snrs) {
  LinkConfig base = default_link_config();
  base.psdu_bytes = 40;
  std::vector<LinkConfig> points;
  for (const double snr : snrs) {
    LinkConfig c = base;
    c.snr_db = snr;
    points.push_back(c);
  }
  return points;
}

}  // namespace

TEST(BatchWave, WaveLanesMatchScalarPackets) {
  // Direct engine-less check of run_packet_wave against run_packet, both
  // full width and a ragged tail width, unmemoized.
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 40;
  cfg.snr_db = 16.0;
  WlanLink scalar(cfg), batched(cfg);

  PacketBatch batch;
  PacketResult out[8];
  ASSERT_TRUE(batched.run_packet_wave(0, 8, batch, nullptr, out));
  for (std::size_t p = 0; p < 8; ++p) {
    SCOPED_TRACE("packet " + std::to_string(p));
    expect_identical(out[p], scalar.run_packet(p));
  }
  ASSERT_TRUE(batched.run_packet_wave(8, 3, batch, nullptr, out));
  for (std::size_t p = 0; p < 3; ++p) {
    SCOPED_TRACE("packet " + std::to_string(8 + p));
    expect_identical(out[p], scalar.run_packet(8 + p));
  }
}

TEST(BatchWave, WaveMatchesScalarWithoutRfFrontend) {
  // RfEngine::kNone: the wave decimates through the lane FIR instead of
  // the raw ADC stride; still bit-identical to the scalar path.
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 40;
  cfg.snr_db = 10.0;
  cfg.rf_engine = RfEngine::kNone;
  WlanLink scalar(cfg), batched(cfg);

  PacketBatch batch;
  PacketResult out[8];
  ASSERT_TRUE(batched.run_packet_wave(0, 8, batch, nullptr, out));
  for (std::size_t p = 0; p < 8; ++p) {
    SCOPED_TRACE("packet " + std::to_string(p));
    expect_identical(out[p], scalar.run_packet(p));
  }
}

TEST(BatchWave, MemoizedWaveBuildsAndReplaysScenes) {
  // Build at one noise level, replay at another — the memoized wave's
  // scenes (and recorded front-end tapes) must reproduce what scalar
  // run_packet computes at each level from scratch.
  LinkConfig lo = default_link_config();
  lo.psdu_bytes = 40;
  lo.snr_db = 12.0;
  LinkConfig hi = lo;
  hi.snr_db = 22.0;

  WlanLink wave_lo(lo), wave_hi(hi);
  std::vector<TxScene> scenes(8);
  PacketBatch batch;
  PacketResult out_lo[8], out_hi[8];
  ASSERT_TRUE(wave_lo.run_packet_wave(0, 8, batch, scenes.data(), out_lo));
  for (const TxScene& sc : scenes) EXPECT_TRUE(sc.valid());
  ASSERT_TRUE(wave_hi.run_packet_wave(0, 8, batch, scenes.data(), out_hi));

  WlanLink scalar_lo(lo), scalar_hi(hi);
  for (std::size_t p = 0; p < 8; ++p) {
    SCOPED_TRACE("packet " + std::to_string(p));
    expect_identical(out_lo[p], scalar_lo.run_packet(p));
    expect_identical(out_hi[p], scalar_hi.run_packet(p));
  }
}

TEST(BatchWave, ScenesInterchangeWithScalarMemoPath) {
  // Scenes built by the wave replay through run_packet_memo and vice
  // versa — the two memo paths share one TxScene contract.
  LinkConfig lo = default_link_config();
  lo.psdu_bytes = 40;
  lo.snr_db = 12.0;
  LinkConfig hi = lo;
  hi.snr_db = 22.0;

  // Wave builds, scalar replays.
  WlanLink wave_lo(lo), scalar_hi(hi);
  std::vector<TxScene> scenes(8);
  PacketBatch batch;
  PacketResult out[8];
  ASSERT_TRUE(wave_lo.run_packet_wave(0, 8, batch, scenes.data(), out));
  WlanLink ref_hi(hi);
  for (std::size_t p = 0; p < 8; ++p) {
    SCOPED_TRACE("wave->scalar packet " + std::to_string(p));
    expect_identical(scalar_hi.run_packet_memo(p, scenes[p]),
                     ref_hi.run_packet(p));
  }

  // Scalar builds, wave replays.
  std::vector<TxScene> scenes2(8);
  WlanLink scalar_lo(lo), wave_hi(hi);
  for (std::size_t p = 0; p < 8; ++p)
    (void)scalar_lo.run_packet_memo(p, scenes2[p]);
  ASSERT_TRUE(wave_hi.run_packet_wave(0, 8, batch, scenes2.data(), out));
  for (std::size_t p = 0; p < 8; ++p) {
    SCOPED_TRACE("scalar->wave packet " + std::to_string(p));
    expect_identical(out[p], ref_hi.run_packet(p));
  }
}

TEST(BatchWave, GraphPathRefusesToWave) {
  LinkConfig cfg = default_link_config();
  cfg.packet_path = PacketPath::kGraph;
  WlanLink link(cfg);
  PacketBatch batch;
  PacketResult out[8];
  EXPECT_FALSE(link.run_packet_wave(0, 8, batch, nullptr, out));
}

TEST(BatchWave, AdaptiveSweepWidth8MatchesWidth1) {
  // The headline contract: the adaptive sweep at batch_width 8 EXPECT_EQs
  // the scalar-reference engine at batch_width 1, for thread counts
  // {1, 2, 8}, memoization on and off.
  const auto points = waterfall({12.0, 16.0});
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.5;
  rule.min_errors = 10;
  rule.min_packets = 8;
  rule.max_packets = 16;

  for (const bool memo : {true, false}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE("memo=" + std::to_string(memo) +
                   " threads=" + std::to_string(threads));
      SweepOptions wide;
      wide.threads = threads;
      wide.memoize_tx = memo;
      wide.batch_width = 8;
      SweepOptions narrow = wide;
      narrow.batch_width = 1;
      const auto a = sweep_ber_adaptive(points, rule, wide);
      const auto b = sweep_ber_adaptive(points, rule, narrow);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t k = 0; k < a.size(); ++k) {
        SCOPED_TRACE("point " + std::to_string(k));
        expect_identical(a[k], b[k]);
        EXPECT_EQ(a[k].converged, b[k].converged);
      }
    }
  }
}

TEST(BatchWave, FixedSweepWidth8MatchesWidth1) {
  const auto points = waterfall({14.0, 20.0});
  for (const bool memo : {true, false}) {
    SCOPED_TRACE("memo=" + std::to_string(memo));
    SweepOptions wide;
    wide.threads = 2;
    wide.memoize_tx = memo;
    wide.batch_width = 8;
    SweepOptions narrow = wide;
    narrow.batch_width = 1;
    const auto a = sweep_ber_parallel(points, 19, wide);  // ragged tail chunk
    const auto b = sweep_ber_parallel(points, 19, narrow);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      SCOPED_TRACE("point " + std::to_string(k));
      expect_identical(a[k], b[k]);
    }
  }
}

}  // namespace wlansim::core
