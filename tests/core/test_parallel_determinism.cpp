// run_ber_parallel must be bit-identical to the serial run_ber for every
// thread count — the pool partitions work dynamically, but per-packet
// results land in per-packet slots and are reduced in packet order, so not
// even the EVM average's floating-point accumulation can drift.
#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/parallel.h"

namespace wlansim::core {
namespace {

void expect_identical(const BerResult& a, const BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);  // exact, not approximate
}

void expect_thread_invariant(const LinkConfig& cfg, std::size_t packets) {
  WlanLink serial(cfg);
  const BerResult ref = serial.run_ber(packets);
  // 0 = shared pool at hardware concurrency; 7 deliberately doesn't divide
  // the packet count.
  for (const std::size_t threads : {1u, 2u, 7u, 0u}) {
    const BerResult par = run_ber_parallel(cfg, packets, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(par, ref);
  }
}

TEST(ParallelDeterminism, CleanChannel) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  cfg.snr_db = 16.0;  // error events make the counters nontrivial
  expect_thread_invariant(cfg, 18);
}

TEST(ParallelDeterminism, WithInterferer) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  cfg.interferer = channel::InterfererConfig{};
  cfg.interferer->psdu_bytes = 80;
  expect_thread_invariant(cfg, 10);
}

TEST(ParallelDeterminism, RepeatedCallsReuseCachedLinks) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  const BerResult first = run_ber_parallel(cfg, 6, 2);
  const BerResult second = run_ber_parallel(cfg, 6, 2);  // cache hit path
  expect_identical(first, second);
}

TEST(ParallelDeterminism, SweepMatchesPointwiseRuns) {
  LinkConfig base = default_link_config();
  base.psdu_bytes = 60;
  std::vector<LinkConfig> points;
  for (const double snr : {14.0, 18.0, 24.0}) {
    LinkConfig c = base;
    c.snr_db = snr;
    points.push_back(c);
  }
  const std::vector<BerResult> sweep = sweep_ber_parallel(points, 5);
  ASSERT_EQ(sweep.size(), points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    SCOPED_TRACE("point " + std::to_string(k));
    WlanLink serial(points[k]);
    expect_identical(sweep[k], serial.run_ber(5));
  }
}

}  // namespace
}  // namespace wlansim::core
