// Integration tests of the full verification framework.
#include <cmath>

#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/link.h"
#include "dsp/mathutil.h"

namespace wlansim::core {
namespace {

TEST(WlanLink, DecodesThroughRfFrontEnd) {
  LinkConfig cfg = default_link_config();
  WlanLink link(cfg);
  const PacketResult r = link.run_packet(0);
  EXPECT_TRUE(r.decoded);
  EXPECT_EQ(r.bit_errors, 0u);
  EXPECT_GT(r.evm_rms, 0.0);
  EXPECT_LT(r.evm_rms, 0.2);
}

TEST(WlanLink, ReproducibleForSameSeed) {
  LinkConfig cfg = default_link_config();
  WlanLink a(cfg), b(cfg);
  const PacketResult ra = a.run_packet(3);
  const PacketResult rb = b.run_packet(3);
  EXPECT_EQ(ra.decoded, rb.decoded);
  EXPECT_EQ(ra.bit_errors, rb.bit_errors);
  EXPECT_DOUBLE_EQ(ra.evm_rms, rb.evm_rms);
}

TEST(WlanLink, DifferentPacketsDiffer) {
  LinkConfig cfg = default_link_config();
  WlanLink link(cfg);
  const PacketResult r0 = link.run_packet(0);
  const PacketResult r1 = link.run_packet(1);
  EXPECT_NE(r0.evm_rms, r1.evm_rms);  // fresh payload/noise per index
}

TEST(WlanLink, IdealRfBeatsRealRf) {
  LinkConfig real = default_link_config();
  LinkConfig ideal = default_link_config();
  ideal.rf_engine = RfEngine::kNone;
  WlanLink lr(real), li(ideal);
  double evm_real = 0.0, evm_ideal = 0.0;
  for (int i = 0; i < 4; ++i) {
    evm_real += lr.run_packet(i).evm_rms;
    evm_ideal += li.run_packet(i).evm_rms;
  }
  EXPECT_LT(evm_ideal, evm_real);  // "neglected or idealized" RF is rosy
}

TEST(WlanLink, SnrDegradationRaisesEvm) {
  double prev = 0.0;
  for (double snr : {30.0, 20.0, 14.0}) {
    LinkConfig cfg = default_link_config();
    cfg.snr_db = snr;
    WlanLink link(cfg);
    const PacketResult r = link.run_packet(0);
    EXPECT_GT(r.evm_rms, prev) << snr;
    prev = r.evm_rms;
  }
}

TEST(WlanLink, LowSnrBreaksLink) {
  LinkConfig cfg = default_link_config();
  cfg.snr_db = 3.0;  // far below the 16-QAM requirement
  WlanLink link(cfg);
  const BerResult r = link.run_ber(4);
  EXPECT_GT(r.ber(), 0.05);
}

TEST(WlanLink, RunBerAggregates) {
  LinkConfig cfg = default_link_config();
  WlanLink link(cfg);
  const BerResult r = link.run_ber(3);
  EXPECT_EQ(r.packets, 3u);
  EXPECT_EQ(r.bits, 3u * 8u * cfg.psdu_bytes);
  EXPECT_GT(r.evm_rms_avg, 0.0);
}

TEST(WlanLink, FadingChannelDegradesLink) {
  LinkConfig flat = default_link_config();
  LinkConfig faded = default_link_config();
  channel::FadingConfig fc;
  fc.rms_delay_spread_s = 100e-9;
  faded.fading = fc;
  WlanLink lf(flat), lm(faded);
  const BerResult a = lf.run_ber(6);
  const BerResult b = lm.run_ber(6);
  EXPECT_GE(b.ber(), a.ber());
  EXPECT_GT(b.evm_rms_avg, a.evm_rms_avg);
}

TEST(WlanLink, InterfererWithIdealFilteringIsHarmless) {
  // The idealized front-end (perfect digital channel filter) must shrug
  // off the +16 dB adjacent channel.
  LinkConfig cfg = default_link_config();
  cfg.rf_engine = RfEngine::kNone;
  cfg.interferer = channel::InterfererConfig{.offset_hz = 20e6, .level_db = 16.0};
  WlanLink link(cfg);
  const PacketResult r = link.run_packet(0);
  EXPECT_TRUE(r.decoded);
  EXPECT_EQ(r.bit_errors, 0u);
}

TEST(WlanLink, RejectsBadConfig) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 0;
  EXPECT_THROW(WlanLink{cfg}, std::invalid_argument);
  cfg = default_link_config();
  cfg.oversample = 0;
  EXPECT_THROW(WlanLink{cfg}, std::invalid_argument);
}

TEST(WlanLink, CapturesWaveformsForInspection) {
  LinkConfig cfg = default_link_config();
  WlanLink link(cfg);
  link.run_packet(0);
  EXPECT_FALSE(link.last_rx_baseband().empty());
  EXPECT_FALSE(link.last_rf_input().empty());
  // RF input is at the oversampled rate.
  EXPECT_NEAR(static_cast<double>(link.last_rf_input().size()) /
                  static_cast<double>(link.last_rx_baseband().size()),
              static_cast<double>(cfg.oversample), 0.1);
}

TEST(Experiments, Fig4SpectrumShowsAdjacentChannelAbove) {
  LinkConfig cfg = default_link_config();
  const SpectrumResult r = experiment_fig4_spectrum(cfg);
  // The adjacent channel sits ~16 dB above the wanted channel (Fig. 4).
  EXPECT_NEAR(r.adjacent_power_dbm - r.wanted_power_dbm, 16.0, 1.5);
  EXPECT_EQ(r.offset_hz, 20e6);
  EXPECT_FALSE(r.psd.power.empty());
}

TEST(Experiments, Fig5ShapeNarrowBadOptimumGood) {
  LinkConfig cfg = default_link_config();
  const auto res = experiment_fig5_filter_bandwidth(cfg, {0.3, 1.0}, 3);
  const auto ber = res.column("ber");
  EXPECT_GT(ber[0], 0.05);   // too narrow: signal destroyed
  EXPECT_LT(ber[1], 0.01);   // nominal bandwidth: clean
}

TEST(Experiments, NoiseGapCosimIsOptimistic) {
  LinkConfig cfg = default_link_config();
  cfg.rx_power_dbm = -80.0;
  cfg.snr_db.reset();
  cfg.cosim.analog_oversample = 8;  // keep the test fast
  const NoiseGapResult r = experiment_noise_gap(cfg, 3);
  // Without noise functions the co-simulated link looks better (paper
  // §5.1: "the measured BER values were better than the results from the
  // corresponding SPW only simulation").
  EXPECT_LT(r.evm_cosim_nonoise, r.evm_system);
  EXPECT_LE(r.ber_cosim_nonoise, r.ber_system + 1e-9);
}

TEST(Experiments, DefaultConfigIsSane) {
  const LinkConfig cfg = default_link_config();
  EXPECT_EQ(cfg.oversample, 4u);
  EXPECT_EQ(cfg.rf_engine, RfEngine::kSystemLevel);
  EXPECT_TRUE(cfg.snr_db.has_value());
}

}  // namespace
}  // namespace wlansim::core
