#include "core/arq.h"

#include <gtest/gtest.h>

#include "core/experiments.h"

namespace wlansim::core {
namespace {

TEST(Arq, CleanLinkDeliversEverythingFirstTry) {
  LinkConfig cfg = default_link_config();
  cfg.snr_db = 30.0;
  ArqConfig arq;
  arq.num_frames = 5;
  arq.payload_bytes = 200;
  const ArqResult r = run_arq(cfg, arq);
  EXPECT_EQ(r.frames_delivered, 5u);
  EXPECT_EQ(r.attempts, 5u);  // no retransmissions needed
  EXPECT_EQ(r.fcs_failures, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 1.0);
  EXPECT_GT(r.goodput_bps(arq.payload_bytes), 1e6);
}

TEST(Arq, RetriesRecoverMarginalLink) {
  LinkConfig cfg = default_link_config();
  cfg.rate = phy::Rate::kMbps36;
  cfg.snr_db = 15.0;  // marginal: some first attempts fail
  ArqConfig arq;
  arq.num_frames = 10;
  arq.payload_bytes = 300;
  arq.max_retries = 4;
  const ArqResult r = run_arq(cfg, arq);
  EXPECT_GT(r.attempts, r.frames_offered);  // retransmissions happened
  EXPECT_GT(r.delivery_ratio(), 0.7);       // and mostly succeeded
}

TEST(Arq, HopelessLinkExhaustsRetries) {
  LinkConfig cfg = default_link_config();
  cfg.rate = phy::Rate::kMbps54;
  cfg.snr_db = 5.0;  // far below the 64-QAM requirement
  ArqConfig arq;
  arq.num_frames = 4;
  arq.max_retries = 2;
  const ArqResult r = run_arq(cfg, arq);
  EXPECT_EQ(r.frames_delivered, 0u);
  EXPECT_EQ(r.attempts, 4u * 3u);  // every frame used all attempts
  EXPECT_DOUBLE_EQ(r.goodput_bps(arq.payload_bytes), 0.0);
}

TEST(Arq, AirtimeFormulaMatchesFrameStructure) {
  // 6 Mbps, 100-byte PSDU: ceil((16+800+6)/24) = 35 symbols.
  // (320 preamble + 80 SIGNAL + 35*80 data) / 20 Msps = 160 us.
  EXPECT_NEAR(ppdu_airtime_s(phy::Rate::kMbps6, 100), 160e-6, 1e-9);
  // Faster rates use less air for the same payload.
  EXPECT_LT(ppdu_airtime_s(phy::Rate::kMbps54, 100),
            ppdu_airtime_s(phy::Rate::kMbps6, 100));
}

TEST(Arq, GoodputNeverExceedsNominalRate) {
  LinkConfig cfg = default_link_config();
  cfg.snr_db = 30.0;
  ArqConfig arq;
  arq.num_frames = 4;
  const ArqResult r = run_arq(cfg, arq);
  EXPECT_LT(r.goodput_bps(arq.payload_bytes),
            phy::rate_params(cfg.rate).rate_mbps * 1e6);
}

}  // namespace
}  // namespace wlansim::core
