// TX-scene memoization must be invisible in the results: a sweep with
// memoize_tx on replays each packet's pre-noise scene across SNR points,
// and every counter — including the EVM average's floating-point value —
// must match the unmemoized per-point runs bit for bit.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiments.h"
#include "core/parallel.h"

namespace wlansim::core {
namespace {

std::vector<LinkConfig> snr_sweep(LinkConfig base, double first_db,
                                  double step_db, std::size_t npts) {
  std::vector<LinkConfig> configs(npts, base);
  for (std::size_t k = 0; k < npts; ++k)
    configs[k].snr_db = first_db + step_db * static_cast<double>(k);
  return configs;
}

void expect_identical(const std::vector<BerResult>& a,
                      const std::vector<BerResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].packets, b[k].packets) << "point " << k;
    EXPECT_EQ(a[k].packets_lost, b[k].packets_lost) << "point " << k;
    EXPECT_EQ(a[k].packet_errors, b[k].packet_errors) << "point " << k;
    EXPECT_EQ(a[k].bits, b[k].bits) << "point " << k;
    EXPECT_EQ(a[k].bit_errors, b[k].bit_errors) << "point " << k;
    EXPECT_EQ(a[k].evm_rms_avg, b[k].evm_rms_avg) << "point " << k;
  }
}

TEST(SweepMemo, MatchesUnmemoizedSweepExactly) {
  LinkConfig base = default_link_config();
  base.psdu_bytes = 40;
  // Span the waterfall so some points decode cleanly and some lose packets.
  const auto configs = snr_sweep(base, 10.0, 2.0, 8);

  SweepOptions memo_on;
  memo_on.memoize_tx = true;
  SweepOptions memo_off;
  memo_off.memoize_tx = false;

  const auto with = sweep_ber_parallel(configs, 10, memo_on);
  const auto without = sweep_ber_parallel(configs, 10, memo_off);
  expect_identical(with, without);
}

TEST(SweepMemo, MatchesPerPointRunsWithInterferer) {
  LinkConfig base = default_link_config();
  base.psdu_bytes = 40;
  channel::InterfererConfig jam;
  jam.offset_hz = 20e6;
  jam.level_db = 10.0;
  jam.psdu_bytes = 60;
  base.interferer = jam;
  const auto configs = snr_sweep(base, 14.0, 3.0, 4);

  const auto memoized = sweep_ber_parallel(configs, 6, SweepOptions{});
  std::vector<BerResult> direct;
  for (const LinkConfig& cfg : configs)
    direct.push_back(run_ber_parallel(cfg, 6));
  expect_identical(memoized, direct);
}

TEST(SweepMemo, ThreadCountInvariant) {
  LinkConfig base = default_link_config();
  base.psdu_bytes = 40;
  const auto configs = snr_sweep(base, 12.0, 3.0, 5);

  SweepOptions one;
  one.threads = 1;
  SweepOptions three;
  three.threads = 3;
  expect_identical(sweep_ber_parallel(configs, 9, one),
                   sweep_ber_parallel(configs, 9, three));
}

TEST(SweepMemo, ScenePacketReplayMatchesFullRun) {
  // Link-level contract behind the sweep: a scene built at one noise level
  // replays bit-identically on a link that differs only in SNR.
  LinkConfig cfg_hi = default_link_config();
  cfg_hi.psdu_bytes = 40;
  cfg_hi.snr_db = 24.0;
  LinkConfig cfg_lo = cfg_hi;
  cfg_lo.snr_db = 13.0;

  WlanLink builder(cfg_hi);
  WlanLink replayer(cfg_lo);
  WlanLink fresh(cfg_lo);

  for (std::uint64_t idx : {0ull, 3ull}) {
    TxScene scene;
    const PacketResult built = builder.run_packet_memo(idx, scene);
    ASSERT_TRUE(scene.valid());
    const PacketResult direct_hi = WlanLink(cfg_hi).run_packet(idx);
    EXPECT_EQ(built.bit_errors, direct_hi.bit_errors);
    EXPECT_EQ(built.evm_rms, direct_hi.evm_rms);

    const PacketResult replayed = replayer.run_packet_memo(idx, scene);
    const PacketResult direct = fresh.run_packet(idx);
    EXPECT_EQ(replayed.decoded, direct.decoded) << "idx " << idx;
    EXPECT_EQ(replayed.bits, direct.bits) << "idx " << idx;
    EXPECT_EQ(replayed.bit_errors, direct.bit_errors) << "idx " << idx;
    EXPECT_EQ(replayed.evm_rms, direct.evm_rms) << "idx " << idx;
    EXPECT_EQ(replayed.cfo_norm, direct.cfo_norm) << "idx " << idx;
  }
}

TEST(SweepMemo, BackCompatThreadsOverload) {
  LinkConfig base = default_link_config();
  base.psdu_bytes = 40;
  const auto configs = snr_sweep(base, 16.0, 4.0, 3);
  const auto a = sweep_ber_parallel(configs, 4, std::size_t{2});
  SweepOptions opts;
  opts.threads = 2;
  expect_identical(a, sweep_ber_parallel(configs, 4, opts));
}

}  // namespace
}  // namespace wlansim::core
