// Steady-state heap discipline of the packet hot path, measured through the
// counting operator new this executable links (see src/testsupport).
//
// Two contracts:
//  * the RF front-end chain itself is allocation-free once its scratch
//    buffers have grown to the packet size;
//  * a warmed-up WlanLink::run_packet stops growing — repeated packets
//    allocate no more than the first post-warm-up packet (the remaining
//    allocations are the TX/RX bit pipeline's, documented in
//    docs/PERFORMANCE.md), and the dominant oversampled scene buffers are
//    reused rather than reallocated.
#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/link.h"
#include "dsp/rng.h"
#include "phy80211a/receiver.h"
#include "phy80211a/transmitter.h"
#include "rf/receiver_chain.h"
#include "testsupport/alloc_hook.h"

namespace wlansim::core {
namespace {

using testhook::allocation_count;
using testhook::reset_allocation_count;

TEST(AllocationDiscipline, RfChainSteadyStateIsAllocationFree) {
  rf::DoubleConversionConfig cfg;
  rf::DoubleConversionReceiver rx(cfg, dsp::Rng(123));

  dsp::Rng rng(5);
  dsp::CVec in(4096);
  for (auto& v : in) v = rng.cgaussian(1e-9);
  dsp::CVec out;

  // Warm up: grows `out` and the chain's internal ping-pong scratch.
  rx.process_into(in, out);
  rx.reset();
  rx.reseed(dsp::Rng(99));

  reset_allocation_count();
  rx.process_into(in, out);
  EXPECT_EQ(allocation_count(), 0u)
      << "RF chain allocated in steady state";
}

TEST(AllocationDiscipline, RunPacketStopsAllocatingAfterWarmup) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;
  WlanLink link(cfg);

  link.run_packet(0);  // cold: builds workspace blocks and grows buffers
  link.run_packet(1);

  reset_allocation_count();
  link.run_packet(2);
  const std::uint64_t warm = allocation_count();

  for (std::uint64_t i = 3; i < 7; ++i) {
    reset_allocation_count();
    link.run_packet(i);
    EXPECT_LE(allocation_count(), warm)
        << "allocation count grew at packet " << i;
  }
}

TEST(AllocationDiscipline, RxDataLoopStopsAllocatingAfterWarmup) {
  // Full RX data loop (batch FFT, equalize, demap-deinterleave, Viterbi):
  // once the thread_local batch workspaces and the decoder's buffers have
  // grown to the frame size, repeated receives of same-sized frames must
  // not allocate more than the first warm receive.
  dsp::Rng rng(17);
  phy::Transmitter tx;
  const dsp::CVec frame =
      tx.modulate({phy::Rate::kMbps54, phy::random_bytes(500, rng)});
  dsp::CVec rx(200, dsp::Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.begin(), frame.end());
  rx.insert(rx.end(), 80, dsp::Cplx{0.0, 0.0});

  const phy::Receiver receiver;
  ASSERT_TRUE(receiver.receive(rx).header_ok);  // cold: grows everything

  reset_allocation_count();
  receiver.receive(rx);
  const std::uint64_t warm = allocation_count();

  for (int i = 0; i < 3; ++i) {
    reset_allocation_count();
    ASSERT_TRUE(receiver.receive(rx).header_ok);
    EXPECT_LE(allocation_count(), warm)
        << "RX data loop allocation count grew at receive " << i;
  }
}

TEST(AllocationDiscipline, BatchedRxAllocatesNoMoreThanReference) {
  dsp::Rng rng(18);
  phy::Transmitter tx;
  const dsp::CVec frame =
      tx.modulate({phy::Rate::kMbps24, phy::random_bytes(400, rng)});
  dsp::CVec rx(200, dsp::Cplx{0.0, 0.0});
  rx.insert(rx.end(), frame.begin(), frame.end());
  rx.insert(rx.end(), 80, dsp::Cplx{0.0, 0.0});

  phy::Receiver::Config cfg;
  cfg.batched_data_path = true;
  const phy::Receiver batched(cfg);
  cfg.batched_data_path = false;
  const phy::Receiver reference(cfg);

  batched.receive(rx);  // warm both paths' persistent scratch
  reference.receive(rx);

  reset_allocation_count();
  batched.receive(rx);
  const std::uint64_t nb = allocation_count();
  reset_allocation_count();
  reference.receive(rx);
  const std::uint64_t nr = allocation_count();

  // The batch path exists to shed the per-symbol vectors the reference
  // loop still makes (demap output, deinterleave output, symbol window).
  EXPECT_LT(nb, nr) << "batched=" << nb << " reference=" << nr;
}

TEST(AllocationDiscipline, DirectPathShedsGraphHeapTraffic) {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;

  cfg.packet_path = PacketPath::kDirect;
  WlanLink direct(cfg);
  cfg.packet_path = PacketPath::kGraph;
  WlanLink graph(cfg);

  direct.run_packet(0);
  graph.run_packet(0);

  reset_allocation_count();
  direct.run_packet(1);
  const std::uint64_t na = allocation_count();
  const std::uint64_t ba = testhook::allocation_bytes();
  reset_allocation_count();
  graph.run_packet(1);
  const std::uint64_t ng = allocation_count();
  const std::uint64_t bg = testhook::allocation_bytes();

  // The direct path's remaining allocations are the 20 Msps TX/RX bit
  // pipeline; everything the graph adds on top (FIFOs, per-chunk vectors,
  // flicker calibration) must be gone. The scene runs at 4x the bit
  // pipeline's rate, so the graph's heap traffic in bytes dwarfs what the
  // direct path has left.
  EXPECT_LT(na, ng) << "direct=" << na << " graph=" << ng;
  EXPECT_LT(ba * 4, bg) << "direct bytes=" << ba << " graph bytes=" << bg;
}

}  // namespace
}  // namespace wlansim::core
