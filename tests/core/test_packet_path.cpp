// The direct (workspace-reuse) packet path must be indistinguishable from
// the dataflow-graph reference — bit for bit, across every feature that
// changes the chain's topology (interferer, TX impairments, SCO, fading,
// both supported RF engines).
#include <gtest/gtest.h>

#include "core/experiments.h"
#include "core/link.h"

namespace wlansim::core {
namespace {

LinkConfig small_config() {
  LinkConfig cfg = default_link_config();
  cfg.psdu_bytes = 60;  // keep each packet cheap; the topology is what matters
  return cfg;
}

void expect_identical(const PacketResult& a, const PacketResult& b) {
  EXPECT_EQ(a.decoded, b.decoded);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.evm_rms, b.evm_rms);  // exact: same floats, same order
  EXPECT_EQ(a.cfo_norm, b.cfo_norm);
}

void expect_paths_match(LinkConfig cfg, std::uint64_t packets = 2) {
  cfg.packet_path = PacketPath::kDirect;
  WlanLink direct(cfg);
  cfg.packet_path = PacketPath::kGraph;
  WlanLink graph(cfg);

  for (std::uint64_t i = 0; i < packets; ++i) {
    const PacketResult rd = direct.run_packet(i);
    const PacketResult rg = graph.run_packet(i);
    expect_identical(rd, rg);

    const dsp::CVec& bd = direct.last_rx_baseband();
    const dsp::CVec& bg = graph.last_rx_baseband();
    ASSERT_EQ(bd.size(), bg.size());
    for (std::size_t k = 0; k < bd.size(); ++k) {
      ASSERT_EQ(bd[k].real(), bg[k].real()) << "sample " << k;
      ASSERT_EQ(bd[k].imag(), bg[k].imag()) << "sample " << k;
    }
    ASSERT_EQ(direct.last_rf_input().size(), graph.last_rf_input().size());
  }
}

TEST(PacketPath, SystemLevelFrontend) { expect_paths_match(small_config()); }

TEST(PacketPath, IdealizedFrontend) {
  LinkConfig cfg = small_config();
  cfg.rf_engine = RfEngine::kNone;
  expect_paths_match(cfg);
}

TEST(PacketPath, WithInterferer) {
  LinkConfig cfg = small_config();
  cfg.interferer = channel::InterfererConfig{};
  cfg.interferer->psdu_bytes = 80;
  expect_paths_match(cfg);
}

TEST(PacketPath, WithTxImpairments) {
  LinkConfig cfg = small_config();
  cfg.tx_pa_backoff_db = 8.0;
  cfg.tx_pa_am_pm_max_deg = 2.0;
  cfg.tx_iq_gain_imbalance_db = 0.3;
  cfg.tx_iq_phase_error_deg = 1.0;
  cfg.tx_lo_leakage_rel = 0.02;
  expect_paths_match(cfg);
}

TEST(PacketPath, WithSamplingClockOffset) {
  LinkConfig cfg = small_config();
  cfg.sco_ppm = 20.0;
  expect_paths_match(cfg);
}

TEST(PacketPath, WithFadingAndInterferer) {
  LinkConfig cfg = small_config();
  cfg.fading = channel::FadingConfig{};
  cfg.interferer = channel::InterfererConfig{};
  expect_paths_match(cfg);
}

TEST(PacketPath, NoChannelNoise) {
  LinkConfig cfg = small_config();
  cfg.snr_db.reset();
  cfg.antenna_noise_density_dbm_hz = -300.0;  // kills the AWGN node entirely
  expect_paths_match(cfg);
}

TEST(PacketPath, NoOversampling) {
  LinkConfig cfg = small_config();
  cfg.oversample = 1;
  cfg.rf_engine = RfEngine::kNone;
  expect_paths_match(cfg);
}

// Workspace reuse must not leak state between packets: re-running an
// earlier packet on a warmed-up link reproduces it exactly.
TEST(PacketPath, WorkspaceReuseIsStateless) {
  LinkConfig cfg = small_config();
  cfg.packet_path = PacketPath::kDirect;
  WlanLink link(cfg);
  const PacketResult first = link.run_packet(0);
  link.run_packet(1);
  link.run_packet(2);
  const PacketResult again = link.run_packet(0);
  expect_identical(first, again);
}

// kAuto must route unsupported engines through the graph rather than
// misrender them; forcing kDirect on such a config still works via fallback.
TEST(PacketPath, AutoSelectsGraphForInterpretedMode) {
  LinkConfig cfg = small_config();
  cfg.mode = sim::ExecutionMode::kInterpreted;  // kAuto -> graph
  WlanLink link(cfg);
  cfg.mode = sim::ExecutionMode::kCompiled;
  cfg.packet_path = PacketPath::kGraph;
  WlanLink ref(cfg);
  expect_identical(link.run_packet(0), ref.run_packet(0));
}

}  // namespace
}  // namespace wlansim::core
