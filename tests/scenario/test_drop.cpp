// The drop engine (scenario/drop.h) and trace writer (scenario/trace.h):
// thread-count determinism of full traces, the dedup-vs-direct bit-identity
// contract, cross-step store warmth, and trace formatting.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "core/experiments.h"
#include "core/parallel.h"
#include "scenario/drop.h"
#include "scenario/trace.h"

namespace wlansim::scenario {
namespace {

namespace fs = std::filesystem;

fs::path test_store(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-droptest" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A small, fast drop: 12 stations x 2 steps over ~6 coarse SNR bins.
DropConfig small_drop() {
  DropConfig cfg;
  cfg.num_stations = 12;
  cfg.num_steps = 2;
  cfg.area_half_m = 40.0;
  cfg.seed = 5;
  cfg.link = core::default_link_config();
  cfg.link.psdu_bytes = 40;
  cfg.snr_bin_db = 2.0;
  cfg.snr_min_db = 2.0;
  cfg.snr_max_db = 12.0;
  cfg.rule.target_rel_ci = 0.5;
  cfg.rule.min_errors = 10;
  cfg.rule.min_packets = 8;
  cfg.rule.max_packets = 16;
  cfg.use_store = false;
  return cfg;
}

std::string csv_trace(const DropConfig& cfg) {
  std::ostringstream os;
  TraceWriter writer(os, TraceFormat::kCsv, "t");
  run_drop(cfg, writer.sink());
  return os.str();
}

TEST(Drop, TracesByteIdenticalAcrossThreadCounts) {
  DropConfig cfg = small_drop();
  cfg.threads = 1;
  const std::string t1 = csv_trace(cfg);
  cfg.threads = 2;
  const std::string t2 = csv_trace(cfg);
  cfg.threads = 8;
  const std::string t8 = csv_trace(cfg);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
  EXPECT_FALSE(t1.empty());
}

TEST(Drop, StoreBackedTracesByteIdenticalAcrossThreadCounts) {
  // Same contract with the calibration store in the loop: each thread
  // count gets a FRESH store, so cold-path measurement + backfill + warm
  // serving all participate in the comparison.
  DropConfig cfg = small_drop();
  cfg.use_store = true;
  cfg.threads = 1;
  cfg.store_dir = test_store("threads1");
  const std::string t1 = csv_trace(cfg);
  cfg.threads = 2;
  cfg.store_dir = test_store("threads2");
  const std::string t2 = csv_trace(cfg);
  cfg.threads = 8;
  cfg.store_dir = test_store("threads8");
  const std::string t8 = csv_trace(cfg);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(Drop, ColdSamplesBitIdenticalToDirectAdaptive) {
  const DropConfig cfg = small_drop();
  std::vector<StationSample> samples;
  run_drop_collect(cfg, samples);
  ASSERT_EQ(samples.size(), cfg.num_stations * cfg.num_steps);

  std::size_t checked = 0;
  for (const auto& s : samples) {
    if (s.result.from_surrogate || checked >= 4) continue;
    const core::BerResult direct = core::run_ber_adaptive(
        sample_link_config(cfg, s), cfg.rule, cfg.threads);
    EXPECT_EQ(direct.packets, s.result.packets);
    EXPECT_EQ(direct.packet_errors, s.result.packet_errors);
    EXPECT_EQ(direct.bits, s.result.bits);
    EXPECT_EQ(direct.bit_errors, s.result.bit_errors);
    EXPECT_EQ(direct.evm_rms_avg, s.result.evm_rms_avg);
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(Drop, SecondRunIsFullyWarm) {
  DropConfig cfg = small_drop();
  cfg.use_store = true;
  cfg.store_dir = test_store("warmth");
  const DropSummary cold = run_drop(cfg, {});
  EXPECT_GT(cold.totals.cold, 0u);

  std::vector<StationSample> samples;
  const DropSummary warm = run_drop_collect(cfg, samples);
  EXPECT_EQ(warm.totals.cold, 0u);
  EXPECT_EQ(warm.totals.warm, warm.totals.distinct);
  for (const auto& s : samples) {
    EXPECT_TRUE(s.result.from_surrogate);
    EXPECT_EQ(s.result.packets, 0u);
  }
}

TEST(Drop, StaticStationsWarmSecondStepFromFirst) {
  // With mobility off, step 1 repeats step 0's bins: everything after the
  // first step is served from the store the first step backfilled.
  DropConfig cfg = small_drop();
  cfg.use_store = true;
  cfg.store_dir = test_store("staticwarm");
  cfg.mobility.step_m = 0.0;
  cfg.path_loss.shadowing_sigma_db = 0.0;  // shadowing redraws per step
  const DropSummary s = run_drop(cfg, {});
  ASSERT_EQ(s.steps.size(), 2u);
  EXPECT_GT(s.steps[0].dedup.cold, 0u);
  EXPECT_EQ(s.steps[1].dedup.cold, 0u);
  EXPECT_EQ(s.steps[1].dedup.warm, s.steps[1].dedup.distinct);
}

TEST(Drop, DedupCollapsesStations) {
  const DropConfig cfg = small_drop();
  const DropSummary s = run_drop(cfg, {});
  EXPECT_EQ(s.totals.queries, cfg.num_stations * cfg.num_steps);
  EXPECT_LT(s.totals.distinct, s.totals.queries);
  EXPECT_EQ(s.totals.warm + s.totals.cold, s.totals.distinct);
}

TEST(Drop, CochannelInterferenceLowersSinr) {
  DropConfig cfg = small_drop();
  cfg.path_loss.shadowing_sigma_db = 0.0;
  cfg.num_steps = 1;
  cfg.snr_min_db = -20.0;
  cfg.snr_max_db = 40.0;
  cfg.rule.max_packets = 8;
  std::vector<StationSample> clean;
  run_drop_collect(cfg, clean);

  cfg.interferers.push_back({{10.0, 10.0}, 16.0, 0.0});
  std::vector<StationSample> jammed;
  run_drop_collect(cfg, jammed);
  ASSERT_EQ(clean.size(), jammed.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_LT(jammed[i].snr_db, clean[i].snr_db);
    EXPECT_FALSE(jammed[i].adj_level_db.has_value());
  }
}

TEST(Drop, AdjacentBssMapsToQuantizedInterfererLevel) {
  DropConfig cfg = small_drop();
  cfg.path_loss.shadowing_sigma_db = 0.0;
  cfg.num_steps = 1;
  cfg.num_stations = 4;
  cfg.adj_floor_db = -60.0;
  cfg.interferers.push_back({{0.0, 0.0}, 16.0, 20e6});
  std::vector<StationSample> samples;
  run_drop_collect(cfg, samples);
  std::size_t audible = 0;
  for (const auto& s : samples) {
    if (!s.adj_level_db.has_value()) continue;
    ++audible;
    // Quantized onto the adj_bin_db grid.
    const double q = core::quantize_axis(*s.adj_level_db, cfg.adj_bin_db);
    EXPECT_EQ(q, *s.adj_level_db);
    const core::LinkConfig link = sample_link_config(cfg, s);
    ASSERT_TRUE(link.interferer.has_value());
    EXPECT_EQ(link.interferer->level_db, *s.adj_level_db);
    EXPECT_EQ(link.interferer->offset_hz, 20e6);
  }
  EXPECT_GT(audible, 0u);
}

TEST(Drop, RejectsMixedAdjacentOffsets) {
  DropConfig cfg = small_drop();
  cfg.interferers.push_back({{0.0, 0.0}, 16.0, 20e6});
  cfg.interferers.push_back({{5.0, 5.0}, 16.0, -20e6});
  EXPECT_THROW(run_drop(cfg, {}), std::invalid_argument);
}

TEST(Trace, CsvShapeAndMissingAdjacentField) {
  const DropConfig cfg = small_drop();
  const std::string trace = csv_trace(cfg);
  std::istringstream is(trace);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, trace_csv_header());
  const std::size_t fields =
      static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) + 1;
  std::size_t rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')) + 1,
              fields);
    EXPECT_EQ(line.rfind("t,", 0), 0u) << line;
  }
  EXPECT_EQ(rows, cfg.num_stations * cfg.num_steps);
}

TEST(Trace, JsonlRowsAreWellFormedObjects) {
  StationSample s;
  s.step = 1;
  s.station = 3;
  s.pos = {1.5, -2.5};
  s.snr_db = 7.25;
  s.snr_bin_db = 7.0;
  const std::string row = trace_jsonl_row("run \"x\"", s);
  EXPECT_EQ(row.front(), '{');
  EXPECT_EQ(row.back(), '}');
  EXPECT_NE(row.find("\"run_tag\":\"run \\\"x\\\"\""), std::string::npos);
  EXPECT_NE(row.find("\"snr_db\":7.25"), std::string::npos);
  EXPECT_NE(row.find("\"source\":\"mc\""), std::string::npos);
  // No adjacent interferer: the key is omitted entirely.
  EXPECT_EQ(row.find("adj_level_db"), std::string::npos);

  s.adj_level_db = -4.0;
  s.result.from_surrogate = true;
  const std::string row2 = trace_jsonl_row("t", s);
  EXPECT_NE(row2.find("\"adj_level_db\":-4"), std::string::npos);
  EXPECT_NE(row2.find("\"source\":\"surrogate\""), std::string::npos);
}

}  // namespace
}  // namespace wlansim::scenario
