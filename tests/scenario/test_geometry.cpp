// Drop geometry (scenario/geometry.h): counter-seed independence, placement
// bounds, reflecting random walk, and the path-loss / shadowing model.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "scenario/geometry.h"

namespace wlansim::scenario {
namespace {

TEST(GeoSeed, DistinctTuplesGiveDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t entity = 0; entity < 16; ++entity) {
    for (std::uint64_t step = 0; step < 16; ++step) {
      for (GeoStream s :
           {GeoStream::kPlacement, GeoStream::kWalk, GeoStream::kShadowing}) {
        seen.insert(geo_seed(1, s, entity, step));
      }
    }
  }
  EXPECT_EQ(seen.size(), 16u * 16u * 3u);
  // And the drop seed itself decorrelates everything.
  EXPECT_NE(geo_seed(1, GeoStream::kPlacement, 0, 0),
            geo_seed(2, GeoStream::kPlacement, 0, 0));
}

TEST(GeoSeed, SwappedArgumentsDoNotCollide) {
  // A plain XOR of the tuple would collide under argument swaps; the
  // chained mix must not.
  EXPECT_NE(geo_seed(1, GeoStream::kWalk, 3, 5),
            geo_seed(1, GeoStream::kWalk, 5, 3));
}

TEST(Placement, UniformWithinBoundsAndDeterministic) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const Vec2 p = place_uniform(42, i, 30.0);
    EXPECT_GE(p.x, -30.0);
    EXPECT_LE(p.x, 30.0);
    EXPECT_GE(p.y, -30.0);
    EXPECT_LE(p.y, 30.0);
    const Vec2 q = place_uniform(42, i, 30.0);
    EXPECT_EQ(p.x, q.x);
    EXPECT_EQ(p.y, q.y);
  }
}

TEST(Walk, StepsHaveExactLengthAndStayInBounds) {
  Vec2 p = place_uniform(7, 0, 10.0);
  for (std::uint64_t step = 1; step <= 50; ++step) {
    const Vec2 prev = p;
    p = walk_step(p, 7, 0, step, 1.5, 10.0);
    EXPECT_GE(p.x, -10.0);
    EXPECT_LE(p.x, 10.0);
    EXPECT_GE(p.y, -10.0);
    EXPECT_LE(p.y, 10.0);
    // Away from the boundary the displacement is exactly the step length.
    const double d = distance_m(prev, p);
    if (std::abs(prev.x) < 8.0 && std::abs(prev.y) < 8.0) {
      EXPECT_NEAR(d, 1.5, 1e-12);
    } else {
      EXPECT_LE(d, 2.0 * 1.5 + 1e-12);
    }
  }
}

TEST(Walk, ZeroStepIsStatic) {
  const Vec2 p{3.0, -4.0};
  const Vec2 q = walk_step(p, 1, 0, 1, 0.0, 10.0);
  EXPECT_EQ(q.x, p.x);
  EXPECT_EQ(q.y, p.y);
}

TEST(Walk, ReflectsHugeStepsBackInside) {
  // Steps much longer than the area must still land inside (multi-bounce).
  const Vec2 q = walk_step({0.0, 0.0}, 3, 1, 1, 1000.0, 5.0);
  EXPECT_GE(q.x, -5.0);
  EXPECT_LE(q.x, 5.0);
  EXPECT_GE(q.y, -5.0);
  EXPECT_LE(q.y, 5.0);
}

TEST(PathLoss, MonotonicWithDistanceAndClamped) {
  PathLossConfig cfg;
  const double pl1 = log_distance_path_loss_db(cfg, 1.0);
  EXPECT_NEAR(pl1, cfg.ref_loss_db, 1e-12);
  // 10 * exponent dB per decade.
  EXPECT_NEAR(log_distance_path_loss_db(cfg, 10.0), pl1 + 10.0 * cfg.exponent,
              1e-9);
  EXPECT_LT(log_distance_path_loss_db(cfg, 5.0),
            log_distance_path_loss_db(cfg, 50.0));
  // Below min_distance_m the model clamps instead of diverging.
  EXPECT_EQ(log_distance_path_loss_db(cfg, 0.0),
            log_distance_path_loss_db(cfg, cfg.min_distance_m));
}

TEST(Shadowing, DeterministicPerTupleAndZeroWhenDisabled) {
  const double a = shadowing_db(9, 3, 0, 2, 6.0);
  EXPECT_EQ(a, shadowing_db(9, 3, 0, 2, 6.0));
  EXPECT_NE(a, shadowing_db(9, 4, 0, 2, 6.0));
  EXPECT_NE(a, shadowing_db(9, 3, 1, 2, 6.0));
  EXPECT_NE(a, shadowing_db(9, 3, 0, 3, 6.0));
  EXPECT_EQ(shadowing_db(9, 3, 0, 2, 0.0), 0.0);
}

TEST(Shadowing, RoughlyGaussianScale) {
  // Sample variance over many draws lands near sigma^2 (loose gate).
  const double sigma = 6.0;
  double sum = 0.0, sum2 = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double x = shadowing_db(11, static_cast<std::uint64_t>(i), 0, 0,
                                  sigma);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.5);
  EXPECT_NEAR(std::sqrt(var), sigma, 0.5);
}

}  // namespace
}  // namespace wlansim::scenario
