// The service's single-line JSON codec: shortest-round-trip doubles, the
// exact-u64 integer channel, string escapes, and strict parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

#include "service/json.h"

namespace wlansim::service {
namespace {

Json parse_ok(const std::string& text) {
  std::string err;
  const std::optional<Json> j = Json::parse(text, &err);
  EXPECT_TRUE(j.has_value()) << text << " -> " << err;
  return j.value();
}

void expect_parse_fails(const std::string& text) {
  EXPECT_FALSE(Json::parse(text).has_value()) << text;
}

TEST(ServiceJson, ScalarRoundTrips) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json::boolean(true).dump(), "true");
  EXPECT_EQ(Json::boolean(false).dump(), "false");
  EXPECT_EQ(Json::string("hi").dump(), "\"hi\"");
  EXPECT_EQ(Json::number(1.5).dump(), "1.5");

  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_ok("1.5").as_double(), 1.5);
}

TEST(ServiceJson, DoublesRoundTripBitExact) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0 / 3.0,
                          0.1,
                          6.02214076e23,
                          -1.7976931348623157e308,
                          5e-324,
                          123456789.123456789};
  for (const double v : cases) {
    const std::string text = Json::number(v).dump();
    const double back = parse_ok(text).as_double();
    EXPECT_EQ(std::signbit(back), std::signbit(v)) << text;
    EXPECT_EQ(back, v) << text;
  }
}

TEST(ServiceJson, NonFiniteDumpsAsNull) {
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
}

TEST(ServiceJson, U64ChannelIsExact) {
  // 2^63 + 1 is not representable as a double; the u64 channel must carry
  // it anyway.
  const std::uint64_t big = (1ull << 63) + 1;
  const Json j = Json::number_u64(big);
  EXPECT_EQ(j.dump(), "9223372036854775809");
  EXPECT_EQ(parse_ok(j.dump()).as_u64(), big);
  // Integral doubles in [0, 2^53] dump without a decimal point.
  EXPECT_EQ(Json::number(2.0).dump(), "2");
}

TEST(ServiceJson, ParserPutsIntegralsInTheU64Channel) {
  EXPECT_EQ(parse_ok("42").as_u64(), 42u);
  EXPECT_THROW(parse_ok("42.5").as_u64(), std::runtime_error);
  EXPECT_THROW(parse_ok("-3").as_u64(), std::runtime_error);
  EXPECT_EQ(parse_ok("-3").as_double(), -3.0);
}

TEST(ServiceJson, StringEscapes) {
  const std::string raw = "a\"b\\c\n\t\x01z";
  const Json j = Json::string(raw);
  EXPECT_EQ(parse_ok(j.dump()).as_string(), raw);
  // \uXXXX escapes, including a surrogate pair.
  EXPECT_EQ(parse_ok("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
  EXPECT_EQ(parse_ok("\"\\ud83d\\ude00\"").as_string(),
            "\xf0\x9f\x98\x80");  // U+1F600
}

TEST(ServiceJson, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj.set("z", Json::number(1.0));
  obj.set("a", Json::number(2.0));
  obj.set("z", Json::number(3.0));  // update in place, keeps slot
  EXPECT_EQ(obj.dump(), "{\"z\":3,\"a\":2}");
  const Json back = parse_ok(obj.dump());
  EXPECT_EQ(back.find("z")->as_double(), 3.0);
  EXPECT_EQ(back.find("a")->as_double(), 2.0);
  EXPECT_EQ(back.find("missing"), nullptr);
}

TEST(ServiceJson, NestedRoundTrip) {
  Json arr = Json::array();
  arr.push_back(Json::number_u64(1));
  arr.push_back(Json::string("two"));
  Json inner = Json::object();
  inner.set("k", Json::boolean(true));
  arr.push_back(std::move(inner));
  Json root = Json::object();
  root.set("list", std::move(arr));
  const Json back = parse_ok(root.dump());
  const Json::Array& list = back.find("list")->as_array();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].as_u64(), 1u);
  EXPECT_EQ(list[1].as_string(), "two");
  EXPECT_TRUE(list[2].find("k")->as_bool());
}

TEST(ServiceJson, MalformedInputsAreRejected) {
  expect_parse_fails("");
  expect_parse_fails("{");
  expect_parse_fails("[1,]");
  expect_parse_fails("{\"a\":}");
  expect_parse_fails("nul");
  expect_parse_fails("1.2.3");
  expect_parse_fails("\"unterminated");
  expect_parse_fails("{} trailing");
  expect_parse_fails("{\"a\":1 \"b\":2}");
  expect_parse_fails("\"bad \\x escape\"");
}

TEST(ServiceJson, DepthLimitStopsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  expect_parse_fails(deep);
}

TEST(ServiceJson, TypeMismatchThrows) {
  EXPECT_THROW(parse_ok("1").as_string(), std::runtime_error);
  EXPECT_THROW(parse_ok("\"x\"").as_double(), std::runtime_error);
  EXPECT_THROW(parse_ok("1.5").as_u64(), std::runtime_error);
}

}  // namespace
}  // namespace wlansim::service
