// Sharded cold-pass execution (service/shard.h): partition/merge units,
// the shard wire codec, worker-side serve_shard resume semantics, and the
// coordinator's headline contract — a pass fanned out across worker
// processes (under any shard count and any worker-death schedule) merges
// back bit-identical to the single-process pooled pass.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.h"
#include "core/parallel.h"
#include "service/checkpoint.h"
#include "service/protocol.h"
#include "service/scheduler.h"
#include "service/shard.h"

namespace wlansim::service {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-shardtest" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::LinkConfig cheap_config(double snr) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.psdu_bytes = 60;
  cfg.snr_db = snr;
  return cfg;
}

sim::StoppingRule small_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.35;
  rule.min_errors = 25;
  rule.min_packets = 8;
  rule.max_packets = 40;
  return rule;
}

std::vector<core::LinkConfig> study(std::initializer_list<double> snrs) {
  std::vector<core::LinkConfig> cfgs;
  for (const double snr : snrs) cfgs.push_back(cheap_config(snr));
  return cfgs;
}

void expect_identical(const core::BerResult& a, const core::BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);
  EXPECT_EQ(a.ber_ci_rel, b.ber_ci_rel);
  EXPECT_EQ(a.converged, b.converged);
}

/// The daemon binary next to this test's build tree, or empty when the
/// layout is unexpected (tests that need workers skip then).
fs::path daemon_binary() {
  std::error_code ec;
  const fs::path self = fs::read_symlink("/proc/self/exe", ec);
  if (ec) return {};
  const fs::path bin =
      self.parent_path().parent_path() / "tools" / "wlansim_daemon";
  return fs::exists(bin, ec) ? bin : fs::path{};
}

// --- Partition and merge ----------------------------------------------------

TEST(ShardPartition, StridedCoversEveryIndexOnce) {
  for (const std::size_t n : {1u, 2u, 5u, 8u, 13u}) {
    for (const std::size_t s : {1u, 2u, 3u, 4u, 7u}) {
      const auto parts = shard_partition(n, s);
      ASSERT_EQ(parts.size(), std::min<std::size_t>(s, n));
      std::vector<bool> seen(n, false);
      for (std::size_t p = 0; p < parts.size(); ++p) {
        EXPECT_FALSE(parts[p].empty());
        for (const std::size_t i : parts[p]) {
          ASSERT_LT(i, n);
          EXPECT_FALSE(seen[i]) << "index " << i << " assigned twice";
          seen[i] = true;
          EXPECT_EQ(i % parts.size(), p) << "not strided";
        }
      }
      for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(seen[i]);
    }
  }
}

TEST(ShardPartition, EdgeCases) {
  EXPECT_TRUE(shard_partition(0, 4).empty());
  // shards == 0 degrades to one shard, never a division by zero.
  const auto one = shard_partition(3, 0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ShardMerge, FurtherAlongEntryWinsPerPoint) {
  core::SweepPointProgress a0;
  a0.packets = 16;
  a0.bits = 1000;
  core::SweepPointProgress b0;
  b0.packets = 8;
  b0.bits = 400;
  core::SweepPointProgress b1;
  b1.packets = 24;
  b1.converged = true;

  const std::vector<core::SweepPointProgress> a{a0, {}};
  const std::vector<core::SweepPointProgress> b{b0, b1};
  const auto m = merge_progress(a, b, 2);
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].packets, 16u);
  EXPECT_EQ(m[0].bits, 1000u);
  EXPECT_EQ(m[1].packets, 24u);
  EXPECT_TRUE(m[1].converged);

  // Either side may be empty (all-zero); sizes must otherwise match.
  EXPECT_EQ(merge_progress({}, b, 2)[1].packets, 24u);
  EXPECT_EQ(merge_progress(a, {}, 2)[0].packets, 16u);
  EXPECT_THROW(merge_progress(a, b, 3), std::invalid_argument);
}

// --- Wire codec -------------------------------------------------------------

TEST(ShardProtocol, ProgressRoundTripIsExact) {
  core::SweepPointProgress p;
  p.packets = 0xDEADBEEFCAFEull;
  p.packets_lost = 3;
  p.packet_errors = 41;
  p.bits = (1ull << 53) + 1;  // would be lossy through a plain double
  p.bit_errors = 977;
  p.evm_sum = 0.1 + 0.2;  // not representable exactly in decimal
  p.evm_packets = 1234;
  p.stopped = true;
  p.converged = false;

  const core::SweepPointProgress q =
      progress_from_json(progress_to_json(p));
  EXPECT_EQ(q.packets, p.packets);
  EXPECT_EQ(q.packets_lost, p.packets_lost);
  EXPECT_EQ(q.packet_errors, p.packet_errors);
  EXPECT_EQ(q.bits, p.bits);
  EXPECT_EQ(q.bit_errors, p.bit_errors);
  EXPECT_EQ(q.evm_sum, p.evm_sum);  // bit-exact, not approximate
  EXPECT_EQ(q.evm_packets, p.evm_packets);
  EXPECT_EQ(q.stopped, p.stopped);
  EXPECT_EQ(q.converged, p.converged);

  const auto arr = progress_array_from_json(
      progress_array_to_json(std::vector<core::SweepPointProgress>{p, {}}));
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr[0].bits, p.bits);
  EXPECT_EQ(arr[1].packets, 0u);
}

TEST(ShardProtocol, ShardRequestRoundTrip) {
  ShardRequest req;
  req.links = study({6.0, 10.0});
  req.rule = small_rule();
  req.threads = 3;
  req.report_every_waves = 4;
  req.resume.resize(2);
  req.resume[1].packets = 16;
  req.resume[1].evm_sum = 1.75;

  // Round-trip through the serialized line, exactly as a worker sees it.
  std::string err;
  const auto j = Json::parse(req.to_json().dump(), &err);
  ASSERT_TRUE(j.has_value()) << err;
  const ShardRequest back = ShardRequest::from_json(*j);

  ASSERT_EQ(back.links.size(), 2u);
  EXPECT_EQ(back.links[0].snr_db, req.links[0].snr_db);
  EXPECT_EQ(back.links[1].psdu_bytes, req.links[1].psdu_bytes);
  // Same content address = same engine question (and same checkpoint key).
  EXPECT_EQ(cold_pass_key(back.links, back.rule),
            cold_pass_key(req.links, req.rule));
  EXPECT_EQ(back.threads, 3u);
  EXPECT_EQ(back.report_every_waves, 4u);
  ASSERT_EQ(back.resume.size(), 2u);
  EXPECT_EQ(back.resume[1].packets, 16u);
  EXPECT_EQ(back.resume[1].evm_sum, 1.75);
}

TEST(ShardProtocol, ShardRequestRejectsMalformedResume) {
  ShardRequest req;
  req.links = study({6.0});
  req.rule = small_rule();
  req.resume.resize(2);  // wrong length for one link
  EXPECT_THROW(ShardRequest::from_json(req.to_json()), std::exception);
}

TEST(ShardProtocol, ShardReplyRoundTrip) {
  std::vector<core::SweepPointProgress> ps(2);
  ps[0].packets = 8;
  const ShardReply prog =
      shard_reply_from_json(shard_progress_response(ps));
  EXPECT_FALSE(prog.done);
  ASSERT_EQ(prog.progress.size(), 2u);
  EXPECT_EQ(prog.progress[0].packets, 8u);

  std::vector<core::BerResult> results(2);
  results[0].packets = 40;
  results[0].bit_errors = 123;
  results[0].evm_rms_avg = 0.25;
  const ShardReply done = shard_reply_from_json(
      shard_done_response(results, ps, /*resumed_packets=*/16));
  EXPECT_TRUE(done.done);
  EXPECT_EQ(done.resumed_packets, 16u);
  ASSERT_EQ(done.results.size(), 2u);
  EXPECT_EQ(done.results[0].packets, 40u);
  EXPECT_EQ(done.results[0].bit_errors, 123u);
  EXPECT_EQ(done.results[0].evm_rms_avg, 0.25);

  EXPECT_THROW(shard_reply_from_json(error_response("worker exploded")),
               std::runtime_error);
}

TEST(ShardProtocol, DropRequestRoundTrip) {
  scenario::DropConfig cfg;
  cfg.num_stations = 7;
  cfg.num_steps = 3;
  cfg.area_half_m = 25.0;
  cfg.tx_power_dbm = 14.5;
  cfg.seed = 99;
  cfg.link = cheap_config(0.0);
  cfg.snr_bin_db = 1.0;
  cfg.rule = small_rule();
  cfg.interferers.push_back({{3.0, -4.0}, 10.0, 312.5e3});
  DropRequest req;
  req.cfg = cfg;

  std::string err;
  const auto j = Json::parse(req.to_json().dump(), &err);
  ASSERT_TRUE(j.has_value()) << err;
  const scenario::DropConfig back = DropRequest::from_json(*j).cfg;
  EXPECT_EQ(back.num_stations, 7u);
  EXPECT_EQ(back.num_steps, 3u);
  EXPECT_EQ(back.area_half_m, 25.0);
  EXPECT_EQ(back.tx_power_dbm, 14.5);
  EXPECT_EQ(back.seed, 99u);
  EXPECT_EQ(back.snr_bin_db, 1.0);
  EXPECT_EQ(back.rule.max_packets, small_rule().max_packets);
  ASSERT_EQ(back.interferers.size(), 1u);
  EXPECT_EQ(back.interferers[0].tx_power_dbm, 10.0);
  EXPECT_EQ(back.interferers[0].offset_hz, 312.5e3);
  EXPECT_EQ(back.link.psdu_bytes, 60u);
}

// --- connect_unix_retry -----------------------------------------------------

TEST(ShardConnect, TimesOutOnMissingSocket) {
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_LT(connect_unix_retry("/tmp/wlansim-no-such.sock", 80), 0);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_GE(ms, 80);
  EXPECT_LT(ms, 3000);
}

TEST(ShardConnect, WaitsForALateBoundSocket) {
  const std::string path = "/tmp/wlansim-late-" +
                           std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  std::thread binder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 1), 0);
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd >= 0) ::close(cfd);
    ::close(lfd);
  });
  const int fd = connect_unix_retry(path, 5000);
  EXPECT_GE(fd, 0);
  if (fd >= 0) ::close(fd);
  binder.join();
  ::unlink(path.c_str());
}

// --- serve_shard (worker side) ----------------------------------------------

/// Drain every line the worker streamed into `fd` and return the parsed
/// replies (the peer end of a socketpair; the worker has already
/// returned, so everything is buffered).
std::vector<ShardReply> read_replies(int fd) {
  ::shutdown(fd, SHUT_WR);
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  std::vector<ShardReply> replies;
  std::size_t start = 0;
  while (start < buf.size()) {
    std::size_t nl = buf.find('\n', start);
    if (nl == std::string::npos) nl = buf.size();
    const std::string line = buf.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    std::string err;
    const auto j = Json::parse(line, &err);
    EXPECT_TRUE(j.has_value()) << line << " -> " << err;
    replies.push_back(shard_reply_from_json(*j));
  }
  return replies;
}

TEST(ServeShard, ResumesFromCheckpointAndColdRerunsWhenCorrupt) {
  const fs::path dir = test_dir("serve-resume");
  const std::vector<core::LinkConfig> links = study({6.0, 8.0});
  const sim::StoppingRule rule = small_rule();
  const std::string key = cold_pass_key(links, rule);
  ASSERT_FALSE(key.empty());

  core::SweepOptions sopts;
  sopts.threads = 2;
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(links, rule, sopts);

  ShardRequest req;
  req.links = links;
  req.rule = rule;
  req.threads = 2;
  req.report_every_waves = 1;

  ShardServeOptions so;
  so.checkpoint_dir = dir;
  so.checkpoint_every_waves = 1;

  // 1) Preempt at the first wave boundary: the shard checkpoint survives.
  std::atomic<bool> stop{true};
  so.stop = &stop;
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  EXPECT_FALSE(serve_shard(pair[0], req, so));
  ::close(pair[0]);
  ::close(pair[1]);
  const auto saved = load_checkpoint(dir, key, links.size());
  ASSERT_TRUE(saved.has_value());
  std::uint64_t saved_packets = 0;
  for (const auto& p : *saved) saved_packets += p.packets;
  ASSERT_GT(saved_packets, 0u);

  // 2) Re-serve without the stop flag: resumes from its own checkpoint
  //    (resumed_packets > 0) and completes bit-identically.
  so.stop = nullptr;
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  EXPECT_TRUE(serve_shard(pair[0], req, so));
  ::close(pair[0]);
  std::vector<ShardReply> replies = read_replies(pair[1]);
  ::close(pair[1]);
  ASSERT_FALSE(replies.empty());
  ASSERT_TRUE(replies.back().done);
  EXPECT_EQ(replies.back().resumed_packets, saved_packets);
  ASSERT_EQ(replies.back().results.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(replies.back().results[i], direct[i]);
  // Completion removed the shard checkpoint.
  EXPECT_FALSE(load_checkpoint(dir, key, links.size()).has_value());

  // 3) Corrupt checkpoint: clean cold re-run (resumed_packets == 0), same
  //    bits. Recreate the preempted state first, then scribble over it.
  stop.store(true);
  so.stop = &stop;
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  EXPECT_FALSE(serve_shard(pair[0], req, so));
  ::close(pair[0]);
  ::close(pair[1]);
  {
    std::ofstream os(checkpoint_path(dir, key), std::ios::trunc);
    os << "not a checkpoint\n";
  }
  so.stop = nullptr;
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  EXPECT_TRUE(serve_shard(pair[0], req, so));
  ::close(pair[0]);
  replies = read_replies(pair[1]);
  ::close(pair[1]);
  ASSERT_FALSE(replies.empty());
  ASSERT_TRUE(replies.back().done);
  EXPECT_EQ(replies.back().resumed_packets, 0u);
  ASSERT_EQ(replies.back().results.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(replies.back().results[i], direct[i]);
}

// --- Coordinator ------------------------------------------------------------

ShardCoordinator::Options coord_opts(const fs::path& dir,
                                     std::size_t workers) {
  ShardCoordinator::Options opts;
  opts.workers = workers;
  opts.worker_binary = daemon_binary();
  opts.checkpoint_dir = dir;
  opts.worker_threads = 1;
  return opts;
}

TEST(ShardCoordinatorTest, AnyWorkerCountMatchesDirectEvaluation) {
  if (daemon_binary().empty())
    GTEST_SKIP() << "wlansim_daemon not found next to the test binary";
  const std::vector<core::LinkConfig> links =
      study({6.0, 8.0, 10.0, 12.0, 14.0, 16.0});
  const sim::StoppingRule rule = small_rule();
  core::SweepOptions sopts;
  sopts.threads = 1;
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(links, rule, sopts);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    const fs::path dir = test_dir(
        ("coord-" + std::to_string(workers)).c_str());
    ShardCoordinator coord(coord_opts(dir, workers));
    const std::vector<core::BerResult> sharded =
        coord.run(links, rule, sopts);
    ASSERT_EQ(sharded.size(), direct.size()) << workers << " workers";
    for (std::size_t i = 0; i < direct.size(); ++i)
      expect_identical(sharded[i], direct[i]);
    const ShardStats st = coord.stats();
    EXPECT_EQ(st.passes, 1u);
    EXPECT_GE(st.shards, std::min<std::size_t>(workers, links.size()));
    // A clean run leaves no whole-pass checkpoint behind.
    EXPECT_FALSE(load_checkpoint(dir, cold_pass_key(links, rule),
                                 links.size())
                     .has_value());
  }
}

TEST(ShardCoordinatorTest, SurvivesWorkerKilledBetweenPasses) {
  if (daemon_binary().empty())
    GTEST_SKIP() << "wlansim_daemon not found next to the test binary";
  const fs::path dir = test_dir("coord-kill");
  ShardCoordinator coord(coord_opts(dir, 2));

  core::SweepOptions sopts;
  sopts.threads = 1;
  // Warm-up pass: spawns the workers so there are pids to kill.
  sim::StoppingRule tiny = small_rule();
  tiny.max_packets = 8;
  tiny.min_packets = 8;
  coord.run(study({5.0, 7.0}), tiny, sopts);
  const std::vector<pid_t> pids = coord.worker_pids();
  ASSERT_EQ(pids.size(), 2u);

  // SIGKILL one worker. The next pass finds its socket dead at dispatch
  // (or the connection drops at the first poll), respawns it, and still
  // merges bit-identically.
  ASSERT_EQ(::kill(pids[0], SIGKILL), 0);

  const std::vector<core::LinkConfig> links = study({6.0, 8.0, 10.0, 12.0});
  const sim::StoppingRule rule = small_rule();
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(links, rule, sopts);
  const std::vector<core::BerResult> sharded = coord.run(links, rule, sopts);
  ASSERT_EQ(sharded.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(sharded[i], direct[i]);
  EXPECT_GE(coord.stats().worker_respawns, 1u);
}

TEST(ShardCoordinatorTest, SurvivesWorkerKilledMidShard) {
  if (daemon_binary().empty())
    GTEST_SKIP() << "wlansim_daemon not found next to the test binary";
  const fs::path dir = test_dir("coord-midkill");
  ShardCoordinator coord(coord_opts(dir, 2));

  core::SweepOptions sopts;
  sopts.threads = 1;
  // Long enough for the kill to land mid-shard on most schedules; if the
  // pass wins the race the assertions below still hold (identity is
  // unconditional, the respawn counter is not asserted here).
  sim::StoppingRule rule = small_rule();
  rule.target_rel_ci = 0.05;
  rule.min_errors = 4000;
  rule.max_packets = 96;
  const std::vector<core::LinkConfig> links =
      study({4.0, 5.0, 6.0, 7.0, 8.0, 9.0});
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(links, rule, sopts);

  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    const std::vector<pid_t> pids = coord.worker_pids();
    if (!pids.empty()) ::kill(pids.back(), SIGKILL);
  });
  const std::vector<core::BerResult> sharded = coord.run(links, rule, sopts);
  killer.join();

  ASSERT_EQ(sharded.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(sharded[i], direct[i]);
}

TEST(ShardCoordinatorTest, FallsBackToLocalWhenWorkersUnreachable) {
  const fs::path dir = test_dir("coord-local");
  // Attach-only coordinator pointed at a socket nobody serves: every
  // dispatch fails, the pass falls back to in-process execution and still
  // completes bit-identically.
  ShardCoordinator::Options opts;
  opts.attach_sockets = {dir / "nobody.sock"};
  opts.checkpoint_dir = dir;
  ShardCoordinator coord(std::move(opts));

  const std::vector<core::LinkConfig> links = study({6.0, 8.0, 10.0});
  const sim::StoppingRule rule = small_rule();
  core::SweepOptions sopts;
  sopts.threads = 2;
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(links, rule, sopts);
  const std::vector<core::BerResult> sharded = coord.run(links, rule, sopts);
  ASSERT_EQ(sharded.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(sharded[i], direct[i]);
}

// --- Scheduler integration --------------------------------------------------

std::map<std::string, std::string> store_bytes(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream is(e.path(), std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    files[fs::relative(e.path(), dir).string()] = std::move(data);
  }
  return files;
}

TEST(ShardScheduler, ShardedColdPassMatchesUnshardedIncludingStoreBytes) {
  if (daemon_binary().empty())
    GTEST_SKIP() << "wlansim_daemon not found next to the test binary";
  const fs::path plain_dir = test_dir("sched-plain");
  const fs::path shard_dir = test_dir("sched-shard");

  JobRequest req;
  req.configs = study({6.0, 8.0, 10.0, 12.0, 14.0});
  req.rule = small_rule();

  Scheduler::Options popts;
  popts.store_dir = plain_dir;
  popts.threads = 1;
  Scheduler plain(popts);
  const JobResult plain_res = plain.submit(req).get();
  plain.stop();

  Scheduler::Options sopts_sched;
  sopts_sched.store_dir = shard_dir;
  sopts_sched.threads = 1;
  sopts_sched.workers = 2;
  Scheduler sharded(sopts_sched);
  ASSERT_NE(sharded.coordinator(), nullptr);
  const JobResult shard_res = sharded.submit(req).get();
  const SchedulerStats st = sharded.stats();
  sharded.stop();

  EXPECT_EQ(st.workers, 2u);
  EXPECT_EQ(st.sharded_passes, 1u);
  ASSERT_EQ(shard_res.results.size(), plain_res.results.size());
  for (std::size_t i = 0; i < plain_res.results.size(); ++i)
    expect_identical(shard_res.results[i], plain_res.results[i]);

  // The backfilled store is byte-identical: same files, same contents.
  const auto plain_files = store_bytes(plain_dir);
  const auto shard_files = store_bytes(shard_dir);
  ASSERT_EQ(plain_files.size(), shard_files.size());
  for (const auto& [name, data] : plain_files) {
    const auto it = shard_files.find(name);
    ASSERT_NE(it, shard_files.end()) << name;
    EXPECT_EQ(it->second, data) << name;
  }
}

TEST(ShardScheduler, SingleKeyPassesStayLocal) {
  if (daemon_binary().empty())
    GTEST_SKIP() << "wlansim_daemon not found next to the test binary";
  const fs::path dir = test_dir("sched-single");
  Scheduler::Options opts;
  opts.store_dir = dir;
  opts.threads = 1;
  opts.workers = 2;
  Scheduler sched(opts);
  JobRequest req;
  req.configs = study({9.0});
  req.rule = small_rule();
  sched.submit(req).get();
  // One dedup key: not worth a fan-out, and none should be recorded.
  EXPECT_EQ(sched.stats().sharded_passes, 0u);
  sched.stop();
}

}  // namespace
}  // namespace wlansim::service
