// Checkpoint/resume of pooled cold passes: a preempted-then-resumed sweep
// must complete bit-identically to an uninterrupted one (any thread
// count), corrupt or truncated checkpoints must fall back to a clean cold
// start, and resume must work from a checkpoint written by another
// process.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiments.h"
#include "core/parallel.h"
#include "service/checkpoint.h"

namespace wlansim::service {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-ckpttest" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<core::LinkConfig> test_configs() {
  // 6 and 8 dB converge within the first wave; 14 dB is too clean to reach
  // the error floor and runs to the packet cap — so the sweep always spans
  // multiple waves and every interruption below lands mid-flight.
  std::vector<core::LinkConfig> configs;
  for (const double snr : {6.0, 8.0, 14.0}) {
    core::LinkConfig cfg = core::default_link_config();
    cfg.psdu_bytes = 60;
    cfg.snr_db = snr;
    configs.push_back(cfg);
  }
  return configs;
}

sim::StoppingRule test_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.30;
  rule.min_errors = 30;
  rule.min_packets = 8;
  rule.max_packets = 48;
  return rule;
}

void expect_identical(const core::BerResult& a, const core::BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);
  EXPECT_EQ(a.ber_ci_rel, b.ber_ci_rel);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.ber(), b.ber());
  EXPECT_EQ(a.per(), b.per());
}

std::string read_file(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Drive run_cold_pass_checkpointed to completion, preempting it
/// `interruptions` times first (a pre-set stop flag preempts at the first
/// wave boundary of each attempt, saving the checkpoint — each attempt
/// advances at least one wave).
std::vector<core::BerResult> run_with_interruptions(
    const fs::path& dir, const std::vector<core::LinkConfig>& configs,
    const sim::StoppingRule& rule, const core::SweepOptions& opts,
    int interruptions) {
  for (int i = 0; i < interruptions; ++i) {
    std::atomic<bool> stop{true};
    EXPECT_THROW(
        run_cold_pass_checkpointed(dir, configs, rule, opts, &stop),
        PreemptedError);
    EXPECT_TRUE(fs::exists(
        checkpoint_path(dir, cold_pass_key(configs, rule))));
  }
  return run_cold_pass_checkpointed(dir, configs, rule, opts);
}

class CheckpointResume : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CheckpointResume, BitExactAcrossInterruptions) {
  const std::size_t threads = GetParam();
  const auto configs = test_configs();
  const auto rule = test_rule();
  core::SweepOptions opts;
  opts.threads = threads;

  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(configs, rule, opts);

  const fs::path dir = test_dir(
      ("resume-t" + std::to_string(threads)).c_str());
  const std::vector<core::BerResult> resumed =
      run_with_interruptions(dir, configs, rule, opts, 2);

  ASSERT_EQ(resumed.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(resumed[i], direct[i]);
  // Completion removes the checkpoint.
  EXPECT_FALSE(
      fs::exists(checkpoint_path(dir, cold_pass_key(configs, rule))));
}

INSTANTIATE_TEST_SUITE_P(Threads, CheckpointResume,
                         ::testing::Values(std::size_t{1}, std::size_t{2},
                                           std::size_t{8}));

TEST(Checkpoint, TruncatedFileColdStartsCleanly) {
  const auto configs = test_configs();
  const auto rule = test_rule();
  core::SweepOptions opts;
  opts.threads = 2;
  const fs::path dir = test_dir("truncated");
  const std::string key = cold_pass_key(configs, rule);

  // Produce a real checkpoint, then truncate it mid-file.
  std::atomic<bool> stop{true};
  EXPECT_THROW(run_cold_pass_checkpointed(dir, configs, rule, opts, &stop),
               PreemptedError);
  const fs::path path = checkpoint_path(dir, key);
  const std::string full = read_file(path);
  ASSERT_GT(full.size(), 20u);
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << full.substr(0, full.size() / 2);
  }
  EXPECT_FALSE(load_checkpoint(dir, key, configs.size()).has_value());

  const std::vector<core::BerResult> after =
      run_cold_pass_checkpointed(dir, configs, rule, opts);
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(configs, rule, opts);
  ASSERT_EQ(after.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(after[i], direct[i]);
}

TEST(Checkpoint, CorruptFileColdStartsCleanly) {
  const auto configs = test_configs();
  const auto rule = test_rule();
  core::SweepOptions opts;
  opts.threads = 2;
  const fs::path dir = test_dir("corrupt");
  const std::string key = cold_pass_key(configs, rule);

  {
    std::ofstream os(checkpoint_path(dir, key), std::ios::binary);
    os << "not a checkpoint at all\xff\x00 garbage\n";
  }
  EXPECT_FALSE(load_checkpoint(dir, key, configs.size()).has_value());

  const std::vector<core::BerResult> after =
      run_cold_pass_checkpointed(dir, configs, rule, opts);
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(configs, rule, opts);
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(after[i], direct[i]);
}

TEST(Checkpoint, ResumesFromAnotherProcessesCheckpoint) {
  const auto configs = test_configs();
  const auto rule = test_rule();
  core::SweepOptions opts;
  opts.threads = 2;
  const fs::path dir = test_dir("crosspid");
  const std::string key = cold_pass_key(configs, rule);

  std::atomic<bool> stop{true};
  EXPECT_THROW(run_cold_pass_checkpointed(dir, configs, rule, opts, &stop),
               PreemptedError);

  // Simulate a checkpoint written by a different process: rewrite the
  // recorded pid line. Resume must not care who wrote the file.
  const fs::path path = checkpoint_path(dir, key);
  std::string text = read_file(path);
  const std::size_t pid_at = text.find("pid ");
  ASSERT_NE(pid_at, std::string::npos);
  const std::size_t pid_end = text.find('\n', pid_at);
  ASSERT_NE(pid_end, std::string::npos);
  text.replace(pid_at, pid_end - pid_at, "pid 999999");
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
  }
  long writer_pid = 0;
  const auto loaded = load_checkpoint(dir, key, configs.size(), &writer_pid);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(writer_pid, 999999);

  const std::vector<core::BerResult> resumed =
      run_cold_pass_checkpointed(dir, configs, rule, opts);
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(configs, rule, opts);
  for (std::size_t i = 0; i < direct.size(); ++i)
    expect_identical(resumed[i], direct[i]);
}

TEST(Checkpoint, KeyBindsRuleAndConfigs) {
  const auto configs = test_configs();
  const auto rule = test_rule();
  const std::string key = cold_pass_key(configs, rule);

  sim::StoppingRule other_rule = rule;
  other_rule.max_packets += 8;
  EXPECT_NE(cold_pass_key(configs, other_rule), key);

  auto other_configs = configs;
  other_configs[1].snr_db = 8.5;
  EXPECT_NE(cold_pass_key(other_configs, rule), key);

  // Order matters: resuming point i from point j's progress would be wrong.
  auto swapped = configs;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(cold_pass_key(swapped, rule), key);
}

TEST(Checkpoint, SerializeParsesBackExactly) {
  core::SweepPointProgress p;
  p.packets = 16;
  p.packets_lost = 1;
  p.packet_errors = 5;
  p.bits = 7680;
  p.bit_errors = 321;
  p.evm_sum = 0.123456789012345678;
  p.evm_packets = 15;
  p.stopped = false;
  p.converged = false;
  core::SweepPointProgress q;
  q.packets = 24;
  q.bits = 11520;
  q.evm_sum = 1.0 / 3.0;
  q.evm_packets = 24;
  q.stopped = true;
  q.converged = true;
  const std::vector<core::SweepPointProgress> points{p, q};

  const std::string key = "unit-test-key";
  const std::string text = serialize_checkpoint(key, points);
  long writer_pid = 0;
  const auto back = parse_checkpoint(text, key, &writer_pid);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_GT(writer_pid, 0);
  EXPECT_EQ((*back)[0].packets, p.packets);
  EXPECT_EQ((*back)[0].bit_errors, p.bit_errors);
  EXPECT_EQ((*back)[0].evm_sum, p.evm_sum);
  EXPECT_EQ((*back)[1].evm_sum, q.evm_sum);
  EXPECT_TRUE((*back)[1].stopped);
  EXPECT_TRUE((*back)[1].converged);

  // Wrong key: refused.
  EXPECT_FALSE(parse_checkpoint(text, "other-key").has_value());
  // Wrong point count at load time: refused (exercised via load_checkpoint
  // elsewhere); truncation sentinel: dropping the trailing "end" refuses.
  const std::size_t end_at = text.rfind("end");
  ASSERT_NE(end_at, std::string::npos);
  EXPECT_FALSE(parse_checkpoint(text.substr(0, end_at), key).has_value());
}

}  // namespace
}  // namespace wlansim::service
