// The socket front end: request handling (protocol level) and a full
// end-to-end exchange over a real Unix-domain socket, checking that a
// daemon-served sweep reproduces direct evaluation bit-for-bit.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.h"
#include "core/parallel.h"
#include "service/protocol.h"
#include "service/server.h"

namespace wlansim::service {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-servertest" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Server::Options server_opts(const fs::path& dir, const char* sock_name) {
  Server::Options opts;
  // Socket paths must fit sockaddr_un; /tmp keeps them short.
  opts.socket_path = fs::path("/tmp") / (std::string("wlansim-test-") +
                                         sock_name + "-" +
                                         std::to_string(::getpid()) + ".sock");
  opts.scheduler.store_dir = dir;
  opts.scheduler.threads = 2;
  return opts;
}

sim::StoppingRule small_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.35;
  rule.min_errors = 25;
  rule.min_packets = 8;
  rule.max_packets = 40;
  return rule;
}

Json parse_line(const std::string& line) {
  std::string err;
  const auto j = Json::parse(line, &err);
  EXPECT_TRUE(j.has_value()) << line << " -> " << err;
  return j.value();
}

TEST(ServiceServer, HandleLineProtocol) {
  const fs::path dir = test_dir("handleline");
  Server server(server_opts(dir, "hl"));

  const Json ping = parse_line(server.handle_line("{\"op\":\"ping\"}"));
  EXPECT_TRUE(ping.find("ok")->as_bool());
  EXPECT_EQ(ping.find("service")->as_string(), "wlansim-daemon");
  EXPECT_EQ(ping.find("pid")->as_u64(), static_cast<std::uint64_t>(::getpid()));

  const Json stats = parse_line(server.handle_line("{\"op\":\"stats\"}"));
  EXPECT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("jobs")->as_u64(), 0u);

  const Json bad = parse_line(server.handle_line("this is not json"));
  EXPECT_FALSE(bad.find("ok")->as_bool());
  const Json unknown =
      parse_line(server.handle_line("{\"op\":\"frobnicate\"}"));
  EXPECT_FALSE(unknown.find("ok")->as_bool());
  const Json no_op = parse_line(server.handle_line("{\"x\":1}"));
  EXPECT_FALSE(no_op.find("ok")->as_bool());
}

TEST(ServiceServer, HandleLineSweepMatchesDirectEvaluation) {
  const fs::path dir = test_dir("sweep");
  Server server(server_opts(dir, "sw"));

  SweepRequest req;
  req.param = "snr";
  req.from = 6.0;
  req.to = 10.0;
  req.step = 2.0;
  req.base = core::default_link_config();
  req.base.psdu_bytes = 60;
  req.rule = small_rule();

  const std::string line = req.to_json().dump();
  const ResultsReply reply =
      results_reply_from_json(parse_line(server.handle_line(line)));

  core::SweepOptions sopts;
  sopts.threads = 2;
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(req.expand(), req.rule, sopts);
  ASSERT_EQ(reply.results.size(), direct.size());
  ASSERT_EQ(reply.values.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(reply.results[i].packets, direct[i].packets);
    EXPECT_EQ(reply.results[i].bits, direct[i].bits);
    EXPECT_EQ(reply.results[i].bit_errors, direct[i].bit_errors);
    EXPECT_EQ(reply.results[i].packet_errors, direct[i].packet_errors);
    EXPECT_EQ(reply.results[i].evm_rms_avg, direct[i].evm_rms_avg);
    EXPECT_EQ(reply.results[i].ber_ci_rel, direct[i].ber_ci_rel);
    EXPECT_EQ(reply.results[i].ber(), direct[i].ber());
  }
}

/// Minimal blocking client for the e2e test.
std::string socket_round_trip(const fs::path& path,
                              const std::string& request) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string p = path.string();
  EXPECT_LT(p.size(), sizeof(addr.sun_path));
  std::memcpy(addr.sun_path, p.c_str(), p.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  const std::string line = request + "\n";
  EXPECT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(line.size()));
  std::string buffer;
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      ::close(fd);
      return buffer.substr(0, nl);
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      ::close(fd);
      ADD_FAILURE() << "connection closed mid-response";
      return buffer;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(ServiceServer, EndToEndOverTheSocket) {
  const fs::path dir = test_dir("e2e");
  Server server(server_opts(dir, "e2e"));
  const fs::path sock = server.socket_path();
  std::thread serving([&] { server.run(); });

  const Json ping = parse_line(socket_round_trip(sock, "{\"op\":\"ping\"}"));
  EXPECT_TRUE(ping.find("ok")->as_bool());

  SweepRequest req;
  req.param = "snr";
  req.from = 6.0;
  req.to = 8.0;
  req.step = 2.0;
  req.base = core::default_link_config();
  req.base.psdu_bytes = 60;
  req.rule = small_rule();
  const ResultsReply reply = results_reply_from_json(
      parse_line(socket_round_trip(sock, req.to_json().dump())));

  core::SweepOptions sopts;
  sopts.threads = 2;
  const std::vector<core::BerResult> direct =
      core::sweep_ber_adaptive(req.expand(), req.rule, sopts);
  ASSERT_EQ(reply.results.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(reply.results[i].bits, direct[i].bits);
    EXPECT_EQ(reply.results[i].bit_errors, direct[i].bit_errors);
    EXPECT_EQ(reply.results[i].ber_ci_rel, direct[i].ber_ci_rel);
  }

  // An {"op":"shutdown"} request winds the server down and run() returns.
  const Json bye =
      parse_line(socket_round_trip(sock, "{\"op\":\"shutdown\"}"));
  EXPECT_TRUE(bye.find("ok")->as_bool());
  serving.join();
}

TEST(ServiceServer, HandleLineDropMatchesDirectRun) {
  const fs::path dir = test_dir("drop");
  Server server(server_opts(dir, "dr"));

  DropRequest req;
  req.cfg.num_stations = 6;
  req.cfg.num_steps = 2;
  req.cfg.area_half_m = 30.0;
  req.cfg.seed = 7;
  req.cfg.link = core::default_link_config();
  req.cfg.link.psdu_bytes = 60;
  req.cfg.snr_bin_db = 2.0;
  req.cfg.rule = small_rule();

  const scenario::DropSummary served = drop_summary_from_json(
      parse_line(server.handle_line(req.to_json().dump())));

  // Direct run with the daemon's resources (its store, its threads) — the
  // served drop must agree in everything but wall clock, down to the
  // rendered table bytes once the wall column is excluded.
  scenario::DropConfig direct_cfg = req.cfg;
  direct_cfg.threads = 2;
  direct_cfg.store_dir = test_dir("drop-direct");
  const scenario::DropSummary direct =
      scenario::run_drop(direct_cfg, nullptr);

  ASSERT_EQ(served.steps.size(), direct.steps.size());
  for (std::size_t s = 0; s < direct.steps.size(); ++s) {
    EXPECT_EQ(served.steps[s].dedup.queries, direct.steps[s].dedup.queries);
    EXPECT_EQ(served.steps[s].dedup.distinct, direct.steps[s].dedup.distinct);
    EXPECT_EQ(served.steps[s].mean_snr_db, direct.steps[s].mean_snr_db);
    EXPECT_EQ(served.steps[s].mean_ber, direct.steps[s].mean_ber);
    EXPECT_EQ(served.steps[s].mean_goodput_mbps,
              direct.steps[s].mean_goodput_mbps);
  }
  EXPECT_EQ(served.totals.queries, direct.totals.queries);
  EXPECT_EQ(served.totals.distinct, direct.totals.distinct);
  EXPECT_EQ(server.scheduler().stats().drops, 1u);
}

TEST(ServiceServer, ConcurrentClientsCoalesce) {
  const fs::path dir = test_dir("concurrent");
  Server::Options opts = server_opts(dir, "cc");
  opts.scheduler.start_paused = true;  // hold the engine so requests pile up
  Server server(std::move(opts));
  const fs::path sock = server.socket_path();
  std::thread serving([&] { server.run(); });

  SweepRequest req;
  req.param = "snr";
  req.from = 6.0;
  req.to = 8.0;
  req.step = 2.0;
  req.base = core::default_link_config();
  req.base.psdu_bytes = 60;
  req.rule = small_rule();
  const std::string line = req.to_json().dump();

  std::vector<std::thread> clients;
  std::vector<std::string> replies(4);
  for (int c = 0; c < 4; ++c)
    clients.emplace_back(
        [&, c] { replies[c] = socket_round_trip(sock, line); });

  // Release the engine once all four requests are queued.
  while (server.scheduler().stats().jobs < 4) std::this_thread::yield();
  server.scheduler().resume();
  for (auto& t : clients) t.join();

  // Identical requests must produce identical response lines, served from
  // ONE pooled pass (2 distinct cold points for 8 queries).
  for (int c = 1; c < 4; ++c) EXPECT_EQ(replies[c], replies[0]);
  const ResultsReply parsed =
      results_reply_from_json(parse_line(replies[0]));
  EXPECT_EQ(parsed.stats.distinct, 2u);
  const SchedulerStats st = server.scheduler().stats();
  EXPECT_EQ(st.jobs, 4u);
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.groups, 1u);
  EXPECT_EQ(st.dedup.cold, 2u);

  server.request_stop();
  serving.join();
}

}  // namespace
}  // namespace wlansim::service
