// Cross-request batching: jobs queued while the engine is paused (or busy)
// coalesce into one pooled deduplicated pass per compatible group, with
// results bit-identical to evaluating each job alone.
#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <vector>

#include "core/experiments.h"
#include "core/parallel.h"
#include "service/checkpoint.h"
#include "service/scheduler.h"

namespace wlansim::service {
namespace {

namespace fs = std::filesystem;

fs::path test_dir(const char* name) {
  fs::path dir = fs::path(::testing::TempDir()) / "wlansim-schedtest" / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

core::LinkConfig cheap_config(double snr) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.psdu_bytes = 60;
  cfg.snr_db = snr;
  return cfg;
}

sim::StoppingRule small_rule() {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.35;
  rule.min_errors = 25;
  rule.min_packets = 8;
  rule.max_packets = 40;
  return rule;
}

JobRequest job_for(std::initializer_list<double> snrs) {
  JobRequest req;
  for (const double snr : snrs) req.configs.push_back(cheap_config(snr));
  req.rule = small_rule();
  req.bin_width_db = 0.0;
  req.use_store = true;
  return req;
}

void expect_identical(const core::BerResult& a, const core::BerResult& b) {
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.bits, b.bits);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.packet_errors, b.packet_errors);
  EXPECT_EQ(a.packets_lost, b.packets_lost);
  EXPECT_EQ(a.evm_rms_avg, b.evm_rms_avg);
  EXPECT_EQ(a.ber_ci_rel, b.ber_ci_rel);
}

Scheduler::Options paused_opts(const fs::path& dir) {
  Scheduler::Options opts;
  opts.store_dir = dir;
  opts.threads = 2;
  opts.start_paused = true;
  return opts;
}

TEST(ServiceScheduler, PausedSubmissionsCoalesceIntoOneBatch) {
  const fs::path dir = test_dir("coalesce");
  Scheduler sched(paused_opts(dir));

  // Four concurrent clients with overlapping points: 6 distinct configs
  // across 8 queries.
  std::vector<std::future<JobResult>> futs;
  futs.push_back(sched.submit(job_for({6.0, 8.0})));
  futs.push_back(sched.submit(job_for({8.0, 10.0})));
  futs.push_back(sched.submit(job_for({6.0, 12.0})));
  futs.push_back(sched.submit(job_for({7.0, 9.0})));
  sched.resume();

  std::vector<JobResult> results;
  for (auto& f : futs) results.push_back(f.get());

  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.jobs, 4u);
  EXPECT_EQ(st.batches, 1u);  // the whole queue drained in one engine pass
  EXPECT_EQ(st.groups, 1u);   // same rule/axis/bin -> one pooled pass
  EXPECT_EQ(st.dedup.queries, 8u);
  EXPECT_EQ(st.dedup.distinct, 6u);  // 6.0 and 8.0 shared across jobs
  EXPECT_EQ(st.dedup.cold, 6u);

  // Every job sees the pooled group's stats but its own query count.
  EXPECT_EQ(results[0].stats.queries, 2u);
  EXPECT_EQ(results[0].stats.distinct, 6u);

  // Bit-identity: each job's slice equals a direct adaptive evaluation of
  // its own configs (the dedup contract makes pooling invisible).
  for (std::size_t j = 0; j < 4; ++j) {
    const JobRequest req = [&] {
      switch (j) {
        case 0: return job_for({6.0, 8.0});
        case 1: return job_for({8.0, 10.0});
        case 2: return job_for({6.0, 12.0});
        default: return job_for({7.0, 9.0});
      }
    }();
    core::SweepOptions sopts;
    sopts.threads = 2;
    const std::vector<core::BerResult> direct =
        core::sweep_ber_adaptive(req.configs, req.rule, sopts);
    ASSERT_EQ(results[j].results.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
      expect_identical(results[j].results[i], direct[i]);
  }
}

TEST(ServiceScheduler, SecondBatchIsServedWarm) {
  const fs::path dir = test_dir("warm");
  Scheduler sched(paused_opts(dir));
  sched.resume();

  sched.submit(job_for({6.0, 8.0})).get();
  const JobResult warm = sched.submit(job_for({6.0, 8.0})).get();
  EXPECT_TRUE(warm.results[0].from_surrogate);
  EXPECT_TRUE(warm.results[1].from_surrogate);

  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.dedup.cold, 2u);  // only the first batch measured anything
  EXPECT_EQ(st.dedup.warm, 2u);
}

TEST(ServiceScheduler, IncompatibleRulesSplitIntoGroups) {
  const fs::path dir = test_dir("groups");
  Scheduler sched(paused_opts(dir));

  JobRequest a = job_for({6.0});
  JobRequest b = job_for({6.0});
  b.rule.max_packets += 8;  // different rule: must not share results
  auto fa = sched.submit(std::move(a));
  auto fb = sched.submit(std::move(b));
  sched.resume();
  fa.get();
  fb.get();

  const SchedulerStats st = sched.stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.groups, 2u);
}

TEST(ServiceScheduler, StopPreemptsQueuedJobs) {
  const fs::path dir = test_dir("preempt");
  Scheduler sched(paused_opts(dir));
  auto fut = sched.submit(job_for({6.0}));
  sched.stop();  // engine never ran the job
  EXPECT_THROW(fut.get(), PreemptedError);
  EXPECT_EQ(sched.stats().preempted, 1u);
  EXPECT_THROW(sched.submit(job_for({6.0})), std::runtime_error);
}

TEST(ServiceScheduler, EmptyJobIsRejected) {
  const fs::path dir = test_dir("empty");
  Scheduler sched(paused_opts(dir));
  EXPECT_THROW(sched.submit(JobRequest{}), std::invalid_argument);
  sched.stop();
}

}  // namespace
}  // namespace wlansim::service
