// Wire-protocol round trips: LinkConfig, StoppingRule, and BerResult must
// survive JSON serialization bit-exactly (the daemon's determinism
// contract), and the request/response envelopes must parse back to what
// was sent.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/experiments.h"
#include "core/fingerprint.h"
#include "service/protocol.h"

namespace wlansim::service {
namespace {

core::LinkConfig fancy_link() {
  core::LinkConfig cfg = core::default_link_config();
  cfg.rate = phy::Rate::kMbps36;
  cfg.psdu_bytes = 123;
  cfg.rx_power_dbm = -61.25;
  cfg.snr_db = 17.125;
  cfg.rf_engine = core::RfEngine::kSystemLevel;
  cfg.rf.lna_p1db_in_dbm = -19.5;
  cfg.rf.bb_bandwidth_factor = 1.0 / 3.0;
  cfg.sco_ppm = 13.7;
  cfg.interferer =
      channel::InterfererConfig{.offset_hz = 20e6, .level_db = 16.0};
  cfg.seed = (1ull << 62) + 12345;  // not representable as a double
  return cfg;
}

TEST(ServiceProtocol, LinkRoundTripPreservesTheFingerprint) {
  const core::LinkConfig cfg = fancy_link();
  const core::LinkConfig back = link_from_json(link_to_json(cfg));
  // The link fingerprint hashes every evaluation-relevant field; equality
  // means the round trip is evaluation-equivalent.
  EXPECT_EQ(core::link_fingerprint(back), core::link_fingerprint(cfg));
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.snr_db, cfg.snr_db);
}

TEST(ServiceProtocol, LinkRoundTripNoSnrNoInterferer) {
  core::LinkConfig cfg = core::default_link_config();
  cfg.snr_db.reset();
  cfg.interferer.reset();
  const core::LinkConfig back = link_from_json(link_to_json(cfg));
  EXPECT_FALSE(back.snr_db.has_value());
  EXPECT_FALSE(back.interferer.has_value());
  EXPECT_EQ(core::link_fingerprint(back), core::link_fingerprint(cfg));
}

TEST(ServiceProtocol, RuleRoundTrip) {
  sim::StoppingRule rule;
  rule.target_rel_ci = 0.07;
  rule.confidence_z = 2.5758;
  rule.min_errors = 250;
  rule.min_packets = 16;
  rule.max_packets = 123456;
  const sim::StoppingRule back = rule_from_json(rule_to_json(rule));
  EXPECT_EQ(back.target_rel_ci, rule.target_rel_ci);
  EXPECT_EQ(back.confidence_z, rule.confidence_z);
  EXPECT_EQ(back.min_errors, rule.min_errors);
  EXPECT_EQ(back.min_packets, rule.min_packets);
  EXPECT_EQ(back.max_packets, rule.max_packets);
}

TEST(ServiceProtocol, ResultRoundTripIsBitExact) {
  core::BerResult r;
  r.packets = 1234;
  r.packets_lost = 3;
  r.packet_errors = 77;
  r.bits = 987654321;
  r.bit_errors = 4242;
  r.evm_rms_avg = 0.123456789012345678;
  r.ber_ci_rel = 1.0 / 3.0;
  r.converged = true;
  r.from_surrogate = true;
  r.model_ber = 1e-5;
  r.model_per = 0.25;
  r.wall_seconds = 1.75;
  const core::BerResult back = result_from_json(result_to_json(r));
  EXPECT_EQ(back.packets, r.packets);
  EXPECT_EQ(back.packets_lost, r.packets_lost);
  EXPECT_EQ(back.packet_errors, r.packet_errors);
  EXPECT_EQ(back.bits, r.bits);
  EXPECT_EQ(back.bit_errors, r.bit_errors);
  EXPECT_EQ(back.evm_rms_avg, r.evm_rms_avg);
  EXPECT_EQ(back.ber_ci_rel, r.ber_ci_rel);
  EXPECT_EQ(back.converged, r.converged);
  EXPECT_EQ(back.from_surrogate, r.from_surrogate);
  EXPECT_EQ(back.model_ber, r.model_ber);
  EXPECT_EQ(back.model_per, r.model_per);
  EXPECT_EQ(back.wall_seconds, r.wall_seconds);
  EXPECT_EQ(back.ber(), r.ber());
  EXPECT_EQ(back.per(), r.per());
}

TEST(ServiceProtocol, ResultRoundTripCarriesInfiniteCi) {
  // Before the first bit error the Wilson relative half-width is +inf;
  // JSON has no infinity token, so it travels as a string.
  core::BerResult r;
  r.packets = 8;
  r.bits = 8000;
  r.ber_ci_rel = std::numeric_limits<double>::infinity();
  const core::BerResult back = result_from_json(result_to_json(r));
  EXPECT_TRUE(std::isinf(back.ber_ci_rel));
  EXPECT_GT(back.ber_ci_rel, 0.0);
}

TEST(ServiceProtocol, SweepValuesMatchesTheCliLoop) {
  const std::vector<double> vals = sweep_values(5.0, 25.0, 2.0);
  // The CLI's own expansion, verbatim.
  std::vector<double> expect;
  for (double v = 5.0; v <= 25.0 + 1e-9; v += 2.0) expect.push_back(v);
  ASSERT_EQ(vals.size(), expect.size());
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_EQ(vals[i], expect[i]);
}

TEST(ServiceProtocol, AxisFromParam) {
  EXPECT_EQ(axis_from_param("snr"), sim::SurrogateAxis::kSnrDb);
  EXPECT_EQ(axis_from_param("power"), sim::SurrogateAxis::kRxPowerDbm);
  EXPECT_THROW(axis_from_param("p1db"), std::invalid_argument);
}

TEST(ServiceProtocol, SweepRequestRoundTripAndExpansion) {
  SweepRequest req;
  req.param = "snr";
  req.from = 4.0;
  req.to = 10.0;
  req.step = 3.0;
  req.base = fancy_link();
  req.rule.max_packets = 64;
  req.bin_width_db = 0.5;
  req.use_store = false;
  const SweepRequest back = SweepRequest::from_json(req.to_json());
  EXPECT_EQ(back.param, req.param);
  EXPECT_EQ(back.from, req.from);
  EXPECT_EQ(back.to, req.to);
  EXPECT_EQ(back.step, req.step);
  EXPECT_EQ(back.bin_width_db, req.bin_width_db);
  EXPECT_EQ(back.use_store, req.use_store);
  EXPECT_EQ(back.rule.max_packets, req.rule.max_packets);

  const std::vector<core::LinkConfig> pts = back.expand();
  ASSERT_EQ(pts.size(), 3u);  // 4, 7, 10
  EXPECT_EQ(pts[0].snr_db, 4.0);
  EXPECT_EQ(pts[1].snr_db, 7.0);
  EXPECT_EQ(pts[2].snr_db, 10.0);
  // Expansion must match what the CLI would build from the same base.
  core::LinkConfig manual = fancy_link();
  manual.snr_db = 7.0;
  EXPECT_EQ(core::link_fingerprint(pts[1]), core::link_fingerprint(manual));
}

TEST(ServiceProtocol, EvalRequestRoundTrip) {
  EvalRequest req;
  req.param = "power";
  req.links = {core::default_link_config(), fancy_link()};
  req.rule.max_packets = 48;
  req.bin_width_db = 0.25;
  const EvalRequest back = EvalRequest::from_json(req.to_json());
  ASSERT_EQ(back.links.size(), 2u);
  EXPECT_EQ(back.param, "power");
  EXPECT_EQ(back.bin_width_db, 0.25);
  EXPECT_EQ(core::link_fingerprint(back.links[1]),
            core::link_fingerprint(req.links[1]));
}

TEST(ServiceProtocol, ResultsResponseRoundTrip) {
  core::BerResult r;
  r.packets = 16;
  r.bits = 16000;
  r.bit_errors = 12;
  core::DedupStats stats;
  stats.queries = 2;
  stats.distinct = 1;
  stats.warm = 0;
  stats.cold = 1;
  const Json resp = results_response({7.0, 7.0}, {r, r}, stats);
  const ResultsReply reply = results_reply_from_json(resp);
  ASSERT_EQ(reply.values.size(), 2u);
  ASSERT_EQ(reply.results.size(), 2u);
  EXPECT_EQ(reply.values[0], 7.0);
  EXPECT_EQ(reply.results[1].bit_errors, 12u);
  EXPECT_EQ(reply.stats.queries, 2u);
  EXPECT_EQ(reply.stats.cold, 1u);
}

TEST(ServiceProtocol, ErrorResponseThrowsClientSide) {
  try {
    results_reply_from_json(error_response("store melted"));
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("store melted"), std::string::npos);
  }
}

TEST(ServiceProtocol, MalformedLinkJsonThrows) {
  Json j = Json::object();
  j.set("rate_mbps", Json::number(7.0));  // not a valid 802.11a rate
  EXPECT_THROW(link_from_json(j), std::runtime_error);
}

}  // namespace
}  // namespace wlansim::service
