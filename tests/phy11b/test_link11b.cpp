// End-to-end 802.11b loopback tests: all four rates over clean and
// impaired channels.
#include <cmath>

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "phy80211b/chips.h"
#include "phy80211b/receiver.h"
#include "phy80211b/transmitter.h"

namespace wlansim::phy11b {
namespace {

dsp::CVec padded_frame(const Transmitter11b& tx, const Frame11b& f,
                       std::size_t lead, std::size_t tail) {
  const dsp::CVec frame = tx.modulate(f);
  dsp::CVec out;
  out.reserve(lead + frame.size() + tail);
  out.insert(out.end(), lead, dsp::Cplx{0.0, 0.0});
  out.insert(out.end(), frame.begin(), frame.end());
  out.insert(out.end(), tail, dsp::Cplx{0.0, 0.0});
  return out;
}

class Loopback11b : public ::testing::TestWithParam<Rate11b> {};

TEST_P(Loopback11b, CleanChannelRoundTrip) {
  dsp::Rng rng(10 + static_cast<int>(GetParam()));
  Transmitter11b tx;
  const Bytes payload = phy::random_bytes(120, rng);
  const dsp::CVec rx_in = padded_frame(tx, {GetParam(), payload}, 300, 100);

  Receiver11b rx;
  const RxResult11b res = rx.receive(rx_in);
  ASSERT_TRUE(res.detected) << rate11b_name(GetParam());
  ASSERT_TRUE(res.header_ok) << rate11b_name(GetParam());
  EXPECT_EQ(res.header.rate, GetParam());
  EXPECT_EQ(res.psdu, payload) << rate11b_name(GetParam());
}

TEST_P(Loopback11b, SurvivesModerateNoise) {
  dsp::Rng rng(20 + static_cast<int>(GetParam()));
  Transmitter11b tx({.scrambler_seed = 0x2A, .output_power_dbm = 0.0});
  const Bytes payload = phy::random_bytes(80, rng);
  dsp::CVec rx_in = padded_frame(tx, {GetParam(), payload}, 200, 100);
  // 12 dB chip SNR: ample for Barker (10.4 dB gain) and CCK.
  dsp::Rng noise(3);
  rx_in = channel::add_awgn(rx_in, dsp::dbm_to_watts(0.0) / 16.0, noise);

  Receiver11b rx;
  const RxResult11b res = rx.receive(rx_in);
  ASSERT_TRUE(res.header_ok) << rate11b_name(GetParam());
  EXPECT_EQ(res.psdu, payload) << rate11b_name(GetParam());
}

TEST_P(Loopback11b, SurvivesPhaseRotationAndGain) {
  dsp::Rng rng(30 + static_cast<int>(GetParam()));
  Transmitter11b tx;
  const Bytes payload = phy::random_bytes(60, rng);
  dsp::CVec rx_in = padded_frame(tx, {GetParam(), payload}, 150, 80);
  const dsp::Cplx h = 0.3 * dsp::Cplx{std::cos(1.9), std::sin(1.9)};
  for (auto& v : rx_in) v *= h;

  Receiver11b rx;
  const RxResult11b res = rx.receive(rx_in);
  ASSERT_TRUE(res.header_ok) << rate11b_name(GetParam());
  EXPECT_EQ(res.psdu, payload);
}

INSTANTIATE_TEST_SUITE_P(AllRates, Loopback11b,
                         ::testing::Values(Rate11b::kMbps1, Rate11b::kMbps2,
                                           Rate11b::kMbps5_5,
                                           Rate11b::kMbps11));

TEST(Loopback11bExtra, SurvivesSmallCfo) {
  // Differential demodulation tolerates a small carrier offset.
  dsp::Rng rng(40);
  Transmitter11b tx;
  const Bytes payload = phy::random_bytes(60, rng);
  dsp::CVec rx_in = padded_frame(tx, {Rate11b::kMbps2, payload}, 150, 80);
  // 3 kHz at 11 Mchips/s.
  rx_in = dsp::frequency_shift(rx_in, 3e3 / kChipRate);

  Receiver11b rx;
  const RxResult11b res = rx.receive(rx_in);
  ASSERT_TRUE(res.header_ok);
  EXPECT_EQ(res.psdu, payload);
}

TEST(Loopback11bExtra, NoDetectionOnNoise) {
  dsp::Rng rng(41);
  dsp::CVec noise(20000);
  for (auto& v : noise) v = rng.cgaussian(1.0);
  Receiver11b rx;
  EXPECT_FALSE(rx.receive(noise).detected);
}

TEST(Loopback11bExtra, FrameChipsMatchesWaveformLength) {
  dsp::Rng rng(42);
  Transmitter11b tx;
  for (Rate11b r : {Rate11b::kMbps1, Rate11b::kMbps2, Rate11b::kMbps5_5,
                    Rate11b::kMbps11}) {
    const Bytes payload = phy::random_bytes(64, rng);
    const dsp::CVec w = tx.modulate({r, payload});
    EXPECT_EQ(w.size(), Transmitter11b::frame_chips(r, payload.size()))
        << rate11b_name(r);
  }
}

TEST(Loopback11bExtra, CckFasterRateShorterFrame) {
  EXPECT_LT(Transmitter11b::frame_chips(Rate11b::kMbps11, 500),
            Transmitter11b::frame_chips(Rate11b::kMbps1, 500));
}

TEST(Loopback11bExtra, RejectsOversizePayload) {
  Transmitter11b tx;
  dsp::Rng rng(43);
  EXPECT_THROW(tx.modulate({Rate11b::kMbps1, Bytes(5000, 0)}),
               std::invalid_argument);
  EXPECT_THROW(tx.modulate({Rate11b::kMbps1, Bytes{}}), std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::phy11b

namespace wlansim::phy11b {
namespace {

TEST(Rake, ImprovesMultipathReception) {
  // Two-path channel: main tap plus a strong echo 2 chips later.
  dsp::Rng rng(50);
  Transmitter11b tx;
  int plain_ok = 0, rake_ok = 0;
  const int trials = 6;
  for (int t = 0; t < trials; ++t) {
    const Bytes payload = phy::random_bytes(80, rng);
    dsp::CVec clean = padded_frame(tx, {Rate11b::kMbps5_5, payload}, 250, 120);
    // Apply the echo channel.
    dsp::CVec faded(clean.size(), dsp::Cplx{0.0, 0.0});
    const dsp::Cplx echo = 0.55 * dsp::Cplx{std::cos(1.1), std::sin(1.1)};
    for (std::size_t n = 0; n < clean.size(); ++n) {
      faded[n] += clean[n];
      if (n >= 2) faded[n] += echo * clean[n - 2];
    }
    dsp::Rng noise(60 + t);
    faded = channel::add_awgn(faded, dsp::dbm_to_watts(0.0) / 40.0, noise);

    Receiver11b plain;
    Receiver11b::Config rc;
    rc.rake_fingers = 3;
    Receiver11b rake(rc);
    const auto rp = plain.receive(faded);
    const auto rr = rake.receive(faded);
    plain_ok += (rp.header_ok && rp.psdu == payload) ? 1 : 0;
    rake_ok += (rr.header_ok && rr.psdu == payload) ? 1 : 0;
  }
  EXPECT_GE(rake_ok, plain_ok);
  EXPECT_GE(rake_ok, trials - 1);  // RAKE delivers nearly everything
}

TEST(Rake, HarmlessOnCleanChannel) {
  dsp::Rng rng(51);
  Transmitter11b tx;
  const Bytes payload = phy::random_bytes(100, rng);
  const dsp::CVec in = padded_frame(tx, {Rate11b::kMbps11, payload}, 200, 80);
  Receiver11b::Config rc;
  rc.rake_fingers = 3;
  Receiver11b rake(rc);
  const auto res = rake.receive(in);
  ASSERT_TRUE(res.header_ok);
  EXPECT_EQ(res.psdu, payload);
}

}  // namespace
}  // namespace wlansim::phy11b

namespace wlansim::phy11b {
namespace {

class ShortPreamble : public ::testing::TestWithParam<Rate11b> {};

TEST_P(ShortPreamble, RoundTripWithNoise) {
  dsp::Rng rng(70 + static_cast<int>(GetParam()));
  Transmitter11b tx({.scrambler_seed = 0x6C, .output_power_dbm = 0.0,
                     .short_preamble = true});
  const Bytes payload = phy::random_bytes(90, rng);
  dsp::CVec in = padded_frame(tx, {GetParam(), payload}, 250, 100);
  dsp::Rng noise(4);
  in = channel::add_awgn(in, dsp::dbm_to_watts(0.0) / 20.0, noise);

  Receiver11b rx;
  const RxResult11b res = rx.receive(in);
  ASSERT_TRUE(res.header_ok) << rate11b_name(GetParam());
  EXPECT_EQ(res.header.rate, GetParam());
  EXPECT_EQ(res.psdu, payload);
}

INSTANTIATE_TEST_SUITE_P(ShortCapableRates, ShortPreamble,
                         ::testing::Values(Rate11b::kMbps2, Rate11b::kMbps5_5,
                                           Rate11b::kMbps11));

TEST(ShortPreambleExtra, RejectsOneMbpsPayload) {
  Transmitter11b tx({.scrambler_seed = 0x6C, .output_power_dbm = 0.0,
                     .short_preamble = true});
  EXPECT_THROW(tx.modulate({Rate11b::kMbps1, Bytes(10, 0)}),
               std::invalid_argument);
}

TEST(ShortPreambleExtra, HalvesPlcpOverhead) {
  const std::size_t long_chips =
      Transmitter11b::frame_chips(Rate11b::kMbps11, 100, false);
  const std::size_t short_chips =
      Transmitter11b::frame_chips(Rate11b::kMbps11, 100, true);
  // Long PLCP: 192 symbols; short: 96 symbols -> 96*11 fewer chips.
  EXPECT_EQ(long_chips - short_chips, 96u * kBarkerLen);
  // And the generated waveform matches the accounting.
  dsp::Rng rng(80);
  Transmitter11b tx({.scrambler_seed = 0x6C, .output_power_dbm = 0.0,
                     .short_preamble = true});
  const Bytes payload = phy::random_bytes(100, rng);
  EXPECT_EQ(tx.modulate({Rate11b::kMbps11, payload}).size(), short_chips);
}

}  // namespace
}  // namespace wlansim::phy11b
