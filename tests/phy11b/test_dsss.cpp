// Unit tests of the 802.11b DSSS/CCK building blocks.
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "phy80211b/chips.h"
#include "phy80211b/plcp.h"

namespace wlansim::phy11b {
namespace {

TEST(Barker, SequenceAutocorrelation) {
  const auto& b = barker_sequence();
  // Peak autocorrelation 11, off-peak |r| <= 1 (the Barker property, for
  // aligned aperiodic shifts).
  for (std::size_t lag = 1; lag < kBarkerLen; ++lag) {
    double r = 0.0;
    for (std::size_t i = 0; i + lag < kBarkerLen; ++i) r += b[i] * b[i + lag];
    EXPECT_LE(std::abs(r), 1.0 + 1e-12) << lag;
  }
  double peak = 0.0;
  for (double v : b) peak += v * v;
  EXPECT_DOUBLE_EQ(peak, 11.0);
}

TEST(Barker, SpreadDespreadRoundTrip) {
  const dsp::Cplx sym{0.6, -0.8};
  const dsp::CVec chips = barker_spread(sym);
  ASSERT_EQ(chips.size(), kBarkerLen);
  const dsp::Cplx back = barker_despread(chips);
  EXPECT_NEAR(std::abs(back - sym), 0.0, 1e-12);
}

TEST(Barker, ProcessingGainAgainstNoise) {
  dsp::Rng rng(1);
  const dsp::Cplx sym{1.0, 0.0};
  double err_acc = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    dsp::CVec chips = barker_spread(sym);
    for (auto& c : chips) c += rng.cgaussian(1.0);  // 0 dB chip SNR
    err_acc += std::norm(barker_despread(chips) - sym);
  }
  // Despreading averages 11 chips: noise variance reduced ~11x.
  EXPECT_NEAR(err_acc / trials, 1.0 / 11.0, 0.02);
}

TEST(Cck, CodewordsHaveUnitModulusChips) {
  const dsp::CVec c = cck_codeword(0.3, 1.1, 2.2, 0.7);
  ASSERT_EQ(c.size(), kCckLen);
  for (const auto& v : c) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Cck, Phi1RotatesWholeCodeword) {
  const dsp::CVec base = cck_codeword(0.0, 0.5, 1.0, 1.5);
  const double phi1 = 0.9;
  const dsp::CVec rot = cck_codeword(phi1, 0.5, 1.0, 1.5);
  const dsp::Cplx r{std::cos(phi1), std::sin(phi1)};
  for (std::size_t i = 0; i < kCckLen; ++i)
    EXPECT_NEAR(std::abs(rot[i] - base[i] * r), 0.0, 1e-12);
}

TEST(Cck, The64CodewordsAreWellSeparated) {
  // Minimum pairwise distance of the 11 Mbps code set at fixed phi1.
  std::vector<dsp::CVec> codes;
  for (int v = 0; v < 64; ++v) {
    const double p2 = cck_dibit_phase(v & 1, (v >> 1) & 1);
    const double p3 = cck_dibit_phase((v >> 2) & 1, (v >> 3) & 1);
    const double p4 = cck_dibit_phase((v >> 4) & 1, (v >> 5) & 1);
    codes.push_back(cck_codeword(0.0, p2, p3, p4));
  }
  double min_d2 = 1e9;
  for (std::size_t a = 0; a < codes.size(); ++a) {
    for (std::size_t b2 = a + 1; b2 < codes.size(); ++b2) {
      double d2 = 0.0;
      for (std::size_t k = 0; k < kCckLen; ++k)
        d2 += std::norm(codes[a][k] - codes[b2][k]);
      min_d2 = std::min(min_d2, d2);
    }
  }
  // CCK minimum squared distance is 8 (two chips differing by 180 deg or
  // four by 90 deg) for unit-energy chips.
  EXPECT_NEAR(min_d2, 8.0, 1e-9);
}

TEST(Scrambler11bTest, SelfSynchronizingRoundTrip) {
  dsp::Rng rng(2);
  Bits data(300);
  for (auto& b : data) b = rng.bit() ? 1 : 0;
  Scrambler11b tx(0x6C);
  Bits scrambled = data;
  tx.scramble(scrambled);
  EXPECT_NE(scrambled, data);
  // Descrambler seeded differently: self-synchronizes after 7 bits.
  Scrambler11b rx(0x01);
  Bits out = scrambled;
  rx.descramble(out);
  for (std::size_t i = 7; i < data.size(); ++i)
    EXPECT_EQ(out[i], data[i]) << i;
}

TEST(Plcp, Crc16KnownProperty) {
  // CRC of the all-zero header differs from CRC of any single-bit flip.
  Bits zeros(32, 0);
  const std::uint16_t c0 = plcp_crc16(zeros);
  for (std::size_t i = 0; i < 32; ++i) {
    Bits flipped = zeros;
    flipped[i] = 1;
    EXPECT_NE(plcp_crc16(flipped), c0) << i;
  }
}

TEST(Plcp, SignalFieldValues) {
  EXPECT_EQ(signal_field_value(Rate11b::kMbps1), 0x0A);
  EXPECT_EQ(signal_field_value(Rate11b::kMbps2), 0x14);
  EXPECT_EQ(signal_field_value(Rate11b::kMbps5_5), 0x37);
  EXPECT_EQ(signal_field_value(Rate11b::kMbps11), 0x6E);
  Rate11b r;
  EXPECT_TRUE(rate_from_signal(0x6E, &r));
  EXPECT_EQ(r, Rate11b::kMbps11);
  EXPECT_FALSE(rate_from_signal(0x55, &r));
}

TEST(Plcp, LengthEncodingRoundTripAllRatesAndSizes) {
  for (Rate11b rate : {Rate11b::kMbps1, Rate11b::kMbps2, Rate11b::kMbps5_5,
                       Rate11b::kMbps11}) {
    for (std::size_t bytes : {1u, 13u, 100u, 1023u, 2047u}) {
      std::uint16_t us = 0;
      bool ext = false;
      encode_length(rate, bytes, &us, &ext);
      EXPECT_EQ(decode_length(rate, us, ext), bytes)
          << rate11b_name(rate) << " " << bytes;
    }
  }
}

TEST(Plcp, HeaderRoundTripAndCrcCheck) {
  PlcpHeader hdr;
  hdr.rate = Rate11b::kMbps5_5;
  hdr.psdu_bytes = 777;
  const Bits bits = plcp_header_bits(hdr);
  ASSERT_EQ(bits.size(), 48u);
  const auto parsed = parse_plcp_header(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rate, Rate11b::kMbps5_5);
  EXPECT_EQ(parsed->psdu_bytes, 777u);

  Bits bad = bits;
  bad[20] ^= 1;
  EXPECT_FALSE(parse_plcp_header(bad).has_value());
}

}  // namespace
}  // namespace wlansim::phy11b
