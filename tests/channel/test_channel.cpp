#include <cmath>

#include <gtest/gtest.h>

#include "channel/awgn.h"
#include "channel/fading.h"
#include "channel/interferer.h"
#include "dsp/mathutil.h"
#include "dsp/spectrum.h"
#include "phy80211a/params.h"

namespace wlansim::channel {
namespace {

TEST(Awgn, NoisePowerMatchesRequest) {
  dsp::Rng rng(1);
  dsp::CVec zeros(100000, dsp::Cplx{0.0, 0.0});
  const dsp::CVec noisy = add_awgn(zeros, 2.5, rng);
  EXPECT_NEAR(dsp::mean_power(noisy), 2.5, 0.05);
}

TEST(Awgn, ZeroPowerIsTransparent) {
  dsp::Rng rng(1);
  dsp::CVec in = {dsp::Cplx{1.0, -2.0}};
  EXPECT_EQ(add_awgn(in, 0.0, rng)[0], in[0]);
  EXPECT_THROW(add_awgn(in, -1.0, rng), std::invalid_argument);
}

TEST(Awgn, SnrVariantSizesNoiseAgainstReference) {
  dsp::Rng rng(2);
  dsp::CVec sig(50000, dsp::Cplx{1.0, 0.0});  // 1 W reference
  const dsp::CVec noisy = add_awgn_snr(sig, sig, 10.0, rng);
  // Noise power should be 0.1 W.
  double err = 0.0;
  for (std::size_t i = 0; i < sig.size(); ++i) err += std::norm(noisy[i] - sig[i]);
  EXPECT_NEAR(err / sig.size(), 0.1, 0.01);
}

TEST(Awgn, ThermalNoisePower) {
  // kT0 * 20 MHz = 8.01e-14 W ~ -101.0 dBm.
  const double p = thermal_noise_power(20e6);
  EXPECT_NEAR(dsp::watts_to_dbm(p), -100.97, 0.05);
  EXPECT_NEAR(dsp::watts_to_dbm(thermal_noise_power(20e6, 3.0)), -97.97, 0.05);
}

TEST(Fading, UnitAveragePowerOverRealizations) {
  FadingConfig cfg;
  cfg.rms_delay_spread_s = 50e-9;
  cfg.sample_rate_hz = 20e6;
  dsp::Rng rng(3);
  double acc = 0.0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const MultipathChannel ch(cfg, rng);
    for (const auto& t : ch.taps()) acc += std::norm(t);
  }
  EXPECT_NEAR(acc / n, 1.0, 0.05);
}

TEST(Fading, FlatWhenDelaySpreadTiny) {
  FadingConfig cfg;
  cfg.rms_delay_spread_s = 0.0;
  dsp::Rng rng(4);
  const MultipathChannel ch(cfg, rng);
  EXPECT_EQ(ch.taps().size(), 1u);
}

TEST(Fading, TapCountGrowsWithDelaySpread) {
  dsp::Rng rng(5);
  FadingConfig a;
  a.rms_delay_spread_s = 25e-9;
  FadingConfig b;
  b.rms_delay_spread_s = 200e-9;
  const MultipathChannel ca(a, rng);
  const MultipathChannel cb(b, rng);
  EXPECT_GT(cb.taps().size(), ca.taps().size());
}

TEST(Fading, ApplyConvolvesExplicitTaps) {
  const MultipathChannel ch(dsp::CVec{{1.0, 0.0}, {0.5, 0.0}});
  dsp::CVec in = {dsp::Cplx{1.0, 0.0}, dsp::Cplx{0.0, 0.0}, dsp::Cplx{0.0, 0.0}};
  const dsp::CVec out = ch.apply(in);
  EXPECT_NEAR(out[0].real(), 1.0, 1e-15);
  EXPECT_NEAR(out[1].real(), 0.5, 1e-15);
  EXPECT_NEAR(out[2].real(), 0.0, 1e-15);
}

TEST(Fading, ApplyMatchesReferenceBitExactly) {
  dsp::Rng rng(31);
  // Drawn realization and a hand-picked complex tap set, over signals long
  // enough to exercise both the warm-up region (i < ntaps) and steady state.
  FadingConfig cfg;
  cfg.rms_delay_spread_s = 100e-9;
  const MultipathChannel drawn(cfg, rng);
  const MultipathChannel fixed(dsp::CVec{{0.7, -0.1}, {0.0, 0.0}, {-0.3, 0.4}});
  for (const MultipathChannel* ch : {&drawn, &fixed}) {
    dsp::CVec in(257);
    for (auto& v : in) v = rng.cgaussian(1.0);
    const dsp::CVec fast = ch->apply(in);
    const dsp::CVec ref = ch->apply_reference(in);
    dsp::CVec into(in.size());
    ch->apply_into(in, into);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(fast[i].real(), ref[i].real()) << i;
      EXPECT_EQ(fast[i].imag(), ref[i].imag()) << i;
      EXPECT_EQ(into[i].real(), ref[i].real()) << i;
      EXPECT_EQ(into[i].imag(), ref[i].imag()) << i;
    }
  }
}

TEST(Fading, ResponseMatchesTaps) {
  const MultipathChannel ch(dsp::CVec{{1.0, 0.0}, {-1.0, 0.0}});
  // H(f) = 1 - e^{-j2pif}: zero at f=0, max at f=0.5.
  EXPECT_NEAR(std::abs(ch.response(0.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(ch.response(0.5)), 2.0, 1e-12);
}

TEST(Interferer, PowerLevelRelativeToWanted) {
  dsp::Rng rng(6);
  InterfererConfig cfg;
  cfg.offset_hz = 20e6;
  cfg.level_db = 16.0;
  const double wanted_w = dsp::dbm_to_watts(-65.0);
  const dsp::CVec jam = make_interferer(40000, 80e6, wanted_w, cfg, rng);
  ASSERT_EQ(jam.size(), 40000u);
  EXPECT_NEAR(dsp::to_db(dsp::mean_power(jam) / wanted_w), 16.0, 0.2);
}

TEST(Interferer, SpectrumCenteredAtOffset) {
  dsp::Rng rng(7);
  InterfererConfig cfg;
  cfg.offset_hz = 20e6;
  cfg.level_db = 0.0;
  const dsp::CVec jam = make_interferer(1 << 16, 80e6, 1e-6, cfg, rng);
  const dsp::PsdEstimate psd = dsp::welch_psd(jam, {.nfft = 1024});
  const double in_band = psd.band_power(20e6 / 80e6, 16.6e6 / 80e6);
  const double wrong_band = psd.band_power(0.0, 16.6e6 / 80e6);
  EXPECT_GT(dsp::to_db(in_band / wrong_band), 25.0);
}

TEST(Interferer, NegativeOffsetSupported) {
  dsp::Rng rng(8);
  InterfererConfig cfg;
  cfg.offset_hz = -20e6;
  const dsp::CVec jam = make_interferer(1 << 15, 80e6, 1e-6, cfg, rng);
  const dsp::PsdEstimate psd = dsp::welch_psd(jam, {.nfft = 1024});
  EXPECT_GT(psd.band_power(-0.25, 0.2), 10.0 * psd.band_power(0.25, 0.2));
}

TEST(Interferer, RejectsSamplingTheoremViolation) {
  dsp::Rng rng(9);
  InterfererConfig cfg;
  cfg.offset_hz = 40e6;  // needs fs >= 100 MHz
  EXPECT_THROW(make_interferer(1000, 80e6, 1e-6, cfg, rng),
               std::invalid_argument);
  cfg.offset_hz = 20e6;
  EXPECT_THROW(make_interferer(1000, 30e6, 1e-6, cfg, rng),
               std::invalid_argument);  // non-integer oversampling
}

}  // namespace
}  // namespace wlansim::channel
// NOTE: environment preset tests appended below the primary suite.
namespace wlansim::channel {
namespace {

TEST(Environment, PresetsScaleDelaySpread) {
  const FadingConfig flat = environment_config(Environment::kFlat);
  const FadingConfig office = environment_config(Environment::kOffice);
  const FadingConfig open = environment_config(Environment::kOpenSpace);
  EXPECT_DOUBLE_EQ(flat.rms_delay_spread_s, 0.0);
  EXPECT_NEAR(office.rms_delay_spread_s, 50e-9, 1e-12);
  EXPECT_GT(open.rms_delay_spread_s, office.rms_delay_spread_s);
  EXPECT_DOUBLE_EQ(office.sample_rate_hz, 20e6);
  const FadingConfig fast = environment_config(Environment::kOffice, 80e6);
  EXPECT_DOUBLE_EQ(fast.sample_rate_hz, 80e6);
}

TEST(Environment, PresetsProduceWorkingChannels) {
  dsp::Rng rng(11);
  for (Environment env : {Environment::kFlat, Environment::kResidential,
                          Environment::kOffice, Environment::kLargeOffice,
                          Environment::kOpenSpace}) {
    const MultipathChannel ch(environment_config(env), rng);
    EXPECT_GE(ch.taps().size(), 1u);
  }
}

}  // namespace
}  // namespace wlansim::channel

namespace wlansim::channel {
namespace {

TEST(DsssInterferer, LevelAndSpectrum) {
  dsp::Rng rng(21);
  const double wanted = dsp::dbm_to_watts(-65.0);
  const dsp::CVec jam =
      make_dsss_interferer(1 << 16, 80e6, wanted, 20e6, 16.0, rng);
  EXPECT_NEAR(dsp::to_db(dsp::mean_power(jam) / wanted), 16.0, 0.3);
  const dsp::PsdEstimate psd = dsp::welch_psd(jam, {.nfft = 1024});
  // Main lobe around +20 MHz; the wanted band must be far below it.
  const double blocker = psd.band_power(20e6 / 80e6, 14e6 / 80e6);
  const double in_band = psd.band_power(0.0, 16e6 / 80e6);
  EXPECT_GT(dsp::to_db(blocker / in_band), 25.0);
}

TEST(DsssInterferer, RejectsAliasedOffsets) {
  dsp::Rng rng(22);
  EXPECT_THROW(make_dsss_interferer(1000, 40e6, 1e-6, 20e6, 0.0, rng),
               std::invalid_argument);
}

TEST(DsssInterferer, WorksAtArbitraryRates) {
  dsp::Rng rng(23);
  for (double fs : {64e6, 80e6, 100e6}) {
    const dsp::CVec jam = make_dsss_interferer(4096, fs, 1e-6, 0.0, 0.0, rng);
    EXPECT_EQ(jam.size(), 4096u);
    EXPECT_NEAR(dsp::mean_power(jam), 1e-6, 2e-7) << fs;
  }
}

}  // namespace
}  // namespace wlansim::channel
