#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/resample.h"
#include "dsp/rng.h"
#include "dsp/spectrum.h"

namespace wlansim::dsp {
namespace {

CVec tone(std::size_t n, double f_norm, double amp = 1.0) {
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kTwoPi * f_norm * static_cast<double>(i);
    x[i] = amp * Cplx{std::cos(ang), std::sin(ang)};
  }
  return x;
}

TEST(Resample, UpsamplePreservesToneFrequencyAndAmplitude) {
  const CVec x = tone(2048, 0.05);
  const CVec y = upsample(x, 4);
  ASSERT_EQ(y.size(), x.size() * 4);
  const PsdEstimate psd = welch_psd(y, {.nfft = 1024});
  // Tone moves to 0.05/4 = 0.0125 of the new rate.
  double peak_f = 0.0, peak_p = 0.0;
  for (std::size_t i = 0; i < psd.size(); ++i) {
    if (psd.power[i] > peak_p) {
      peak_p = psd.power[i];
      peak_f = psd.freq_norm[i];
    }
  }
  EXPECT_NEAR(peak_f, 0.0125, 0.002);
  // Steady-state amplitude ~1.
  double amp = 0.0;
  for (std::size_t i = y.size() / 2; i < y.size() / 2 + 100; ++i)
    amp += std::abs(y[i]);
  EXPECT_NEAR(amp / 100.0, 1.0, 0.05);
}

TEST(Resample, UpsampleRejectsImages) {
  const CVec x = tone(2048, 0.05);
  const CVec y = upsample(x, 4, 60.0);
  const PsdEstimate psd = welch_psd(y, {.nfft = 1024});
  // Images would appear at 0.0125 +/- 0.25 k; check they are suppressed.
  const double main_db = watts_to_dbm(psd.band_power(0.0125, 0.01));
  const double image_db = watts_to_dbm(
      std::max(psd.band_power(0.2625, 0.01), psd.band_power(-0.2375, 0.01)));
  EXPECT_GT(main_db - image_db, 45.0);
}

TEST(Resample, DownsampleInvertsUpsample) {
  Rng rng(3);
  // Band-limit the test signal so decimation is information-preserving.
  CVec x = tone(4096, 0.03);
  for (Cplx& v : x) v += 0.3 * Cplx{std::cos(0.2), std::sin(0.1)};
  const CVec up = upsample(x, 4);
  const CVec down = downsample(up, 4);
  ASSERT_EQ(down.size(), x.size());
  // Compare a mid-section (edges are distorted by filter transients).
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 1000; i < 3000; ++i) {
    err += std::norm(down[i] - x[i]);
    ref += std::norm(x[i]);
  }
  EXPECT_LT(err / ref, 1e-3);
}

TEST(Resample, FactorOneIsIdentity) {
  const CVec x = tone(128, 0.1);
  const CVec u = upsample(x, 1);
  const CVec d = downsample(x, 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(u[i], x[i]);
    EXPECT_EQ(d[i], x[i]);
  }
}

TEST(Resample, FrequencyShiftMovesTone) {
  const CVec x = tone(4096, 0.05);
  const CVec y = frequency_shift(x, 0.2);
  const PsdEstimate psd = welch_psd(y, {.nfft = 2048});
  double peak_f = 0.0, peak_p = 0.0;
  for (std::size_t i = 0; i < psd.size(); ++i) {
    if (psd.power[i] > peak_p) {
      peak_p = psd.power[i];
      peak_f = psd.freq_norm[i];
    }
  }
  EXPECT_NEAR(peak_f, 0.25, 0.002);
}

TEST(Resample, FrequencyShiftPreservesPower) {
  Rng rng(8);
  CVec x(5000);
  for (Cplx& v : x) v = rng.cgaussian(2.0);
  const double p0 = mean_power(x);
  const CVec y = frequency_shift(x, 0.37);
  EXPECT_NEAR(mean_power(y), p0, 1e-9);
}

TEST(Spectrum, WhiteNoisePsdIsFlatAndParsevalConsistent) {
  Rng rng(17);
  CVec x(1 << 15);
  for (Cplx& v : x) v = rng.cgaussian(1.0);
  const PsdEstimate psd = welch_psd(x, {.nfft = 256});
  double total = 0.0;
  for (double p : psd.power) total += p;
  EXPECT_NEAR(total, 1.0, 0.05);
  // Flatness: every bin within a few dB of the mean.
  const double mean_bin = total / static_cast<double>(psd.size());
  for (double p : psd.power) {
    EXPECT_LT(std::abs(to_db(p / mean_bin)), 3.0);
  }
}

TEST(Spectrum, TonePowerConcentratesInBand) {
  const CVec x = tone(1 << 14, 0.1, std::sqrt(2.0));  // power = 2
  const PsdEstimate psd = welch_psd(x, {.nfft = 1024});
  EXPECT_NEAR(psd.band_power(0.1, 0.01), 2.0, 0.05);
  EXPECT_LT(psd.band_power(-0.3, 0.05), 1e-6);
}

TEST(Spectrum, RejectsBadConfig) {
  CVec x(4096, Cplx{1.0, 0.0});
  EXPECT_THROW(welch_psd(x, {.nfft = 100}), std::invalid_argument);
  EXPECT_THROW(welch_psd(x, {.nfft = 4}), std::invalid_argument);
  WelchConfig bad;
  bad.overlap = 1.0;
  EXPECT_THROW(welch_psd(x, bad), std::invalid_argument);
  CVec shorty(16, Cplx{1.0, 0.0});
  EXPECT_THROW(welch_psd(shorty, {.nfft = 64}), std::invalid_argument);
}

TEST(Spectrum, DbmAtFindsNearestBin) {
  const CVec x = tone(1 << 14, 0.1, 1.0);
  const PsdEstimate psd = welch_psd(x, {.nfft = 256});
  // The tone power (1 W == 30 dBm) is concentrated near f = 0.1.
  EXPECT_GT(psd.dbm_at(0.1), 20.0);
  EXPECT_LT(psd.dbm_at(-0.4), -30.0);
}

}  // namespace
}  // namespace wlansim::dsp

namespace wlansim::dsp {
namespace {

TEST(FractionalResample, RatioOneReproducesInput) {
  Rng rng(31);
  CVec x(200);
  for (auto& v : x) v = rng.cgaussian(1.0);
  const CVec y = fractional_resample(x, 1.0);
  ASSERT_EQ(y.size(), x.size() - 3);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-12) << i;
}

TEST(FractionalResample, ToneSurvivesArbitraryRatio) {
  // Oversampled tone resampled by 80/11: frequency scales by 11/80.
  const double f_in = 0.02;
  const std::size_t n = 8192;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kTwoPi * f_in * static_cast<double>(i);
    x[i] = {std::cos(ang), std::sin(ang)};
  }
  const double ratio = 80.0 / 11.0;
  const CVec y = fractional_resample(x, ratio);
  ASSERT_GT(y.size(), 4096u);
  const PsdEstimate psd = welch_psd(y, {.nfft = 4096});
  double peak_f = 0.0, peak_p = 0.0;
  for (std::size_t i = 0; i < psd.size(); ++i) {
    if (psd.power[i] > peak_p) {
      peak_p = psd.power[i];
      peak_f = psd.freq_norm[i];
    }
  }
  EXPECT_NEAR(peak_f, f_in / ratio, 5e-4);
  // Amplitude preserved (cubic interpolation of an oversampled tone).
  EXPECT_NEAR(mean_power(std::span<const Cplx>(y).subspan(100, 4000)), 1.0,
              0.02);
}

TEST(FractionalResample, ClockOffsetModelsPpmStretch) {
  // ratio = 1 + 50 ppm: output is ~50 ppm longer.
  CVec x(100000, Cplx{1.0, 0.0});
  const CVec y = fractional_resample(x, 1.0 + 50e-6);
  const double expect =
      std::floor((100000.0 - 3.0) * (1.0 + 50e-6));
  EXPECT_NEAR(static_cast<double>(y.size()), expect, 1.0);
}

TEST(FractionalResample, RejectsBadRatioAndTinyInput) {
  EXPECT_THROW(fractional_resample(CVec(10), 0.0), std::invalid_argument);
  EXPECT_TRUE(fractional_resample(CVec(3), 2.0).empty());
}

}  // namespace
}  // namespace wlansim::dsp
