#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "dsp/window.h"

namespace wlansim::dsp {
namespace {

TEST(Window, RejectsZeroLength) {
  EXPECT_THROW(make_window(WindowType::kHann, 0), std::invalid_argument);
}

TEST(Window, SymmetryHolds) {
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman, WindowType::kKaiser}) {
    const RVec w = make_window(type, 33);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
  }
}

TEST(Window, HannEndpointsAreZeroPeakIsOne) {
  const RVec w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[64], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, RectIsAllOnes) {
  const RVec w = make_window(WindowType::kRect, 10);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, KaiserBetaFormulaRegions) {
  EXPECT_NEAR(kaiser_beta_for_attenuation(10.0), 0.0, 1e-12);
  EXPECT_GT(kaiser_beta_for_attenuation(40.0), 2.0);
  EXPECT_NEAR(kaiser_beta_for_attenuation(60.0), 0.1102 * (60.0 - 8.7), 1e-9);
}

TEST(Window, KaiserLengthIsOddAndGrowsWithSpec) {
  const std::size_t a = kaiser_length(40.0, 0.1);
  const std::size_t b = kaiser_length(80.0, 0.1);
  const std::size_t c = kaiser_length(40.0, 0.01);
  EXPECT_EQ(a % 2, 1u);
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_THROW(kaiser_length(60.0, 0.0), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, GaussianMomentsAreCorrect) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(77);
  const int n = 100000;
  double p = 0.0;
  for (int i = 0; i < n; ++i) p += std::norm(rng.cgaussian(3.0));
  EXPECT_NEAR(p / n, 3.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    if (v == 0) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.fork();
  // Child and parent streams should not be identical.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform() == child.uniform()) ++same;
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace wlansim::dsp
