#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"
#include "dsp/window.h"

namespace wlansim::dsp {
namespace {

TEST(Window, RejectsZeroLength) {
  EXPECT_THROW(make_window(WindowType::kHann, 0), std::invalid_argument);
}

TEST(Window, SymmetryHolds) {
  for (auto type : {WindowType::kHann, WindowType::kHamming,
                    WindowType::kBlackman, WindowType::kKaiser}) {
    const RVec w = make_window(type, 33);
    for (std::size_t i = 0; i < w.size(); ++i) {
      EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12);
    }
  }
}

TEST(Window, HannEndpointsAreZeroPeakIsOne) {
  const RVec w = make_window(WindowType::kHann, 65);
  EXPECT_NEAR(w[0], 0.0, 1e-12);
  EXPECT_NEAR(w[64], 0.0, 1e-12);
  EXPECT_NEAR(w[32], 1.0, 1e-12);
}

TEST(Window, RectIsAllOnes) {
  const RVec w = make_window(WindowType::kRect, 10);
  for (double v : w) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Window, KaiserBetaFormulaRegions) {
  EXPECT_NEAR(kaiser_beta_for_attenuation(10.0), 0.0, 1e-12);
  EXPECT_GT(kaiser_beta_for_attenuation(40.0), 2.0);
  EXPECT_NEAR(kaiser_beta_for_attenuation(60.0), 0.1102 * (60.0 - 8.7), 1e-9);
}

TEST(Window, KaiserLengthIsOddAndGrowsWithSpec) {
  const std::size_t a = kaiser_length(40.0, 0.1);
  const std::size_t b = kaiser_length(80.0, 0.1);
  const std::size_t c = kaiser_length(40.0, 0.01);
  EXPECT_EQ(a % 2, 1u);
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_THROW(kaiser_length(60.0, 0.0), std::invalid_argument);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.gaussian(), b.gaussian());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, GaussianMomentsAreCorrect) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(77);
  const int n = 100000;
  double p = 0.0;
  for (int i = 0; i < n; ++i) p += std::norm(rng.cgaussian(3.0));
  EXPECT_NEAR(p / n, 3.0, 0.05);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    if (v == 0) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// The memoized-TX replay and graph-vs-direct equivalence tests depend on
// the noise stream never moving, so the hand-rolled engine and normal
// sampler are pinned bit-for-bit against the host libstdc++ here. If a
// toolchain change ever breaks one of these, the replacement must
// reproduce the old stream, not just the distribution.
TEST(Rng, EngineMatchesStdMt19937_64BitExact) {
  for (const std::uint64_t seed : {1ull, 2003ull, 0xdeadbeefull}) {
    std::mt19937_64 ref(seed);
    Mt19937_64 mine(seed);
    // > 2 full regeneration blocks so the twist wrap-around is covered.
    for (int i = 0; i < 1000; ++i) ASSERT_EQ(ref(), mine());
  }
}

TEST(Rng, GaussianMatchesStdNormalDistributionBitExact) {
  std::mt19937_64 refg(2003);
  std::normal_distribution<double> refd(0.0, 1.0);
  Rng mine(2003);
  for (int i = 0; i < 20000; ++i) {
    const double want = refd(refg);
    ASSERT_EQ(want, mine.gaussian()) << "draw " << i;
  }
}

TEST(Rng, FillGaussianMatchesSingleDrawStream) {
  Rng singles(41);
  Rng bulk(41);
  double buf[257];
  // Odd sizes and interleaved single draws exercise the carried half-pair
  // at every chunk boundary.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{64}, std::size_t{257},
                              std::size_t{100}, std::size_t{3}}) {
    bulk.fill_gaussian(buf, n);
    for (std::size_t k = 0; k < n; ++k) ASSERT_EQ(singles.gaussian(), buf[k]);
    ASSERT_EQ(singles.gaussian(), bulk.gaussian());
  }
}

TEST(Rng, SeedResetsCarriedPairLikeDistributionReset) {
  Rng a(7);
  a.gaussian();  // leaves a banked second value
  a.seed(7);
  std::mt19937_64 refg(7);
  std::normal_distribution<double> refd(0.0, 1.0);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(refd(refg), a.gaussian());
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.fork();
  // Child and parent streams should not be identical.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform() == child.uniform()) ++same;
  EXPECT_LT(same, 3);
}

}  // namespace
}  // namespace wlansim::dsp
