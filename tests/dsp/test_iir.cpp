#include "dsp/iir.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"

namespace wlansim::dsp {
namespace {

TEST(IirDesign, RejectsBadParameters) {
  EXPECT_THROW(design_butterworth_lowpass(0, 0.2), std::invalid_argument);
  EXPECT_THROW(design_butterworth_lowpass(4, 0.0), std::invalid_argument);
  EXPECT_THROW(design_butterworth_lowpass(4, 0.5), std::invalid_argument);
  EXPECT_THROW(design_chebyshev1_lowpass(4, 0.0, 0.2), std::invalid_argument);
  EXPECT_THROW(design_chebyshev1_lowpass(4, -1.0, 0.2), std::invalid_argument);
}

TEST(IirDesign, ButterworthLowpassIsMinus3dbAtCutoff) {
  for (std::size_t order : {2u, 3u, 4u, 5u, 7u}) {
    BiquadCascade f = design_butterworth_lowpass(order, 0.1);
    EXPECT_NEAR(to_db(std::norm(f.response(0.1))), -3.01, 0.1) << order;
    EXPECT_NEAR(std::abs(f.response(0.0)), 1.0, 1e-9) << order;
  }
}

TEST(IirDesign, ButterworthRolloffScalesWithOrder) {
  // One octave above cutoff the attenuation should be ~6 dB per pole.
  for (std::size_t order : {2u, 4u, 6u}) {
    BiquadCascade f = design_butterworth_lowpass(order, 0.05);
    const double att = to_db(std::norm(f.response(0.1)));
    EXPECT_NEAR(att, -6.02 * static_cast<double>(order), 1.5) << order;
  }
}

TEST(IirDesign, ButterworthHighpassMirrors) {
  BiquadCascade f = design_butterworth_highpass(4, 0.1);
  EXPECT_NEAR(std::abs(f.response(0.5)), 1.0, 1e-9);
  EXPECT_NEAR(to_db(std::norm(f.response(0.1))), -3.01, 0.1);
  EXPECT_LT(to_db(std::norm(f.response(0.01))), -60.0);
}

TEST(IirDesign, ChebyshevRippleStaysInBand) {
  const double ripple_db = 1.0;
  BiquadCascade f = design_chebyshev1_lowpass(5, ripple_db, 0.15);
  // In the passband the magnitude must stay within [1-ripple, 1].
  for (double fr = 0.001; fr < 0.148; fr += 0.002) {
    const double mag_db = to_db(std::norm(f.response(fr)));
    EXPECT_LE(mag_db, 0.05) << fr;
    EXPECT_GE(mag_db, -ripple_db - 0.05) << fr;
  }
  // At the passband edge the response equals the ripple floor.
  EXPECT_NEAR(to_db(std::norm(f.response(0.15))), -ripple_db, 0.1);
}

TEST(IirDesign, ChebyshevBeatsButterworthPastBand) {
  // Same order, same edge: Chebyshev must roll off faster.
  BiquadCascade cheb = design_chebyshev1_lowpass(5, 0.5, 0.1);
  BiquadCascade butt = design_butterworth_lowpass(5, 0.1);
  const double ac = to_db(std::norm(cheb.response(0.2)));
  const double ab = to_db(std::norm(butt.response(0.2)));
  EXPECT_LT(ac, ab - 5.0);
}

TEST(IirDesign, ChebyshevEvenOrderDcGain) {
  const double ripple_db = 2.0;
  BiquadCascade f = design_chebyshev1_lowpass(4, ripple_db, 0.2);
  // Even order: DC sits at the ripple floor.
  EXPECT_NEAR(to_db(std::norm(f.response(0.0))), -ripple_db, 0.05);
  BiquadCascade g = design_chebyshev1_lowpass(5, ripple_db, 0.2);
  EXPECT_NEAR(to_db(std::norm(g.response(0.0))), 0.0, 0.05);
}

TEST(IirDesign, ChebyshevHighpassPassesNyquistRejectsDc) {
  BiquadCascade f = design_chebyshev1_highpass(3, 0.5, 0.02);
  EXPECT_NEAR(to_db(std::norm(f.response(0.5))), 0.0, 0.1);
  EXPECT_LT(to_db(std::norm(f.response(0.001))), -40.0);
}

TEST(Biquad, StepMatchesResponseOnTone) {
  BiquadCascade f = design_butterworth_lowpass(4, 0.1);
  const double fr = 0.06;
  const std::size_t n = 4000;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kTwoPi * fr * static_cast<double>(i);
    x[i] = {std::cos(ang), std::sin(ang)};
  }
  const CVec y = f.process(x);
  // After settling, output amplitude must match |H(f)|.
  const double expected = std::abs(f.response(fr));
  double acc = 0.0;
  for (std::size_t i = n / 2; i < n; ++i) acc += std::abs(y[i]);
  const double got = acc / static_cast<double>(n - n / 2);
  EXPECT_NEAR(got, expected, 0.01);
}

TEST(Biquad, ResetClearsState) {
  BiquadCascade f = design_butterworth_lowpass(2, 0.1);
  f.step(Cplx{100.0, 0.0});
  f.reset();
  BiquadCascade g = design_butterworth_lowpass(2, 0.1);
  EXPECT_NEAR(std::abs(f.step(Cplx{1.0, 0.0}) - g.step(Cplx{1.0, 0.0})), 0.0,
              1e-15);
}

TEST(Biquad, StableUnderWhiteNoise) {
  Rng rng(4);
  BiquadCascade f = design_chebyshev1_lowpass(7, 1.0, 0.12);
  double max_out = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const Cplx y = f.step(rng.cgaussian(1.0));
    max_out = std::max(max_out, std::abs(y));
  }
  EXPECT_LT(max_out, 100.0);  // bounded output == stable poles
}

}  // namespace
}  // namespace wlansim::dsp
