#include "dsp/fft.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"

namespace wlansim::dsp {
namespace {

TEST(Fft, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Fft(0), std::invalid_argument);
  EXPECT_THROW(Fft(1), std::invalid_argument);
  EXPECT_THROW(Fft(48), std::invalid_argument);
  EXPECT_NO_THROW(Fft(64));
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  CVec x(8, Cplx{0.0, 0.0});
  x[0] = 1.0;
  const CVec X = fft(x);
  for (const Cplx& v : X) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t k0 = 5;
  CVec x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ang = kTwoPi * static_cast<double>(k0 * i) / static_cast<double>(n);
    x[i] = {std::cos(ang), std::sin(ang)};
  }
  const CVec X = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == k0) {
      EXPECT_NEAR(std::abs(X[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(std::abs(X[k]), 0.0, 1e-9);
    }
  }
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(7);
  for (std::size_t n : {2u, 8u, 64u, 256u, 1024u}) {
    CVec x(n);
    for (Cplx& v : x) v = rng.cgaussian(1.0);
    const CVec y = ifft(fft(x));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-10) << "n=" << n << " i=" << i;
    }
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(11);
  const std::size_t n = 128;
  CVec x(n);
  for (Cplx& v : x) v = rng.cgaussian(2.0);
  const CVec X = fft(x);
  double pt = 0.0, pf = 0.0;
  for (const Cplx& v : x) pt += std::norm(v);
  for (const Cplx& v : X) pf += std::norm(v);
  EXPECT_NEAR(pf, pt * static_cast<double>(n), 1e-6 * pf);
}

TEST(Fft, LinearityHolds) {
  Rng rng(3);
  const std::size_t n = 32;
  CVec a(n), b(n), sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = rng.cgaussian(1.0);
    b[i] = rng.cgaussian(1.0);
    sum[i] = 2.0 * a[i] + Cplx{0.0, 3.0} * b[i];
  }
  const CVec A = fft(a), B = fft(b), S = fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    const Cplx expect = 2.0 * A[k] + Cplx{0.0, 3.0} * B[k];
    EXPECT_NEAR(std::abs(S[k] - expect), 0.0, 1e-9);
  }
}

TEST(Fft, ShiftCentersDc) {
  CVec x = {Cplx{0.0, 0}, Cplx{1.0, 0}, Cplx{2.0, 0}, Cplx{3.0, 0}};
  const CVec y = fftshift(x);
  EXPECT_DOUBLE_EQ(y[0].real(), 2.0);
  EXPECT_DOUBLE_EQ(y[1].real(), 3.0);
  EXPECT_DOUBLE_EQ(y[2].real(), 0.0);
  EXPECT_DOUBLE_EQ(y[3].real(), 1.0);
}

TEST(Fft, InPlaceMatchesOutOfPlace) {
  Rng rng(5);
  const std::size_t n = 64;
  CVec x(n);
  for (Cplx& v : x) v = rng.cgaussian(1.0);
  const Fft engine(n);
  const CVec ref = engine.forward(std::span<const Cplx>(x));
  CVec inplace = x;
  engine.forward(std::span<Cplx>(inplace));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(inplace[i] - ref[i]), 0.0, 1e-12);
}

TEST(Fft, ForwardBatchMatchesPerRowExactly) {
  Rng rng(21);
  const std::size_t n = 64;
  const Fft engine(n);
  for (const std::size_t m : {1u, 8u, 32u}) {
    for (const std::size_t stride : {n, std::size_t{80}}) {
      // Lay rows out `stride` apart, as the OFDM symbol matrix does.
      CVec in((m - 1) * stride + n);
      for (Cplx& v : in) v = rng.cgaussian(1.0);
      CVec batch(m * n);
      engine.forward_batch(in.data(), stride, batch.data(), m);
      for (std::size_t r = 0; r < m; ++r) {
        CVec row(n);
        engine.forward(std::span<const Cplx>(in.data() + r * stride, n),
                       std::span<Cplx>(row));
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(batch[r * n + i].real(), row[i].real())
              << "m=" << m << " r=" << r << " i=" << i;
          EXPECT_EQ(batch[r * n + i].imag(), row[i].imag())
              << "m=" << m << " r=" << r << " i=" << i;
        }
      }
    }
  }
}

TEST(Fft, InverseBatchMatchesPerRowExactly) {
  Rng rng(22);
  const std::size_t n = 64;
  const Fft engine(n);
  for (const std::size_t m : {1u, 8u, 32u}) {
    CVec in(m * n);
    for (Cplx& v : in) v = rng.cgaussian(1.0);
    CVec batch(m * n);
    engine.inverse_batch(in.data(), n, batch.data(), m);
    for (std::size_t r = 0; r < m; ++r) {
      CVec row(n);
      engine.inverse(std::span<const Cplx>(in.data() + r * n, n),
                     std::span<Cplx>(row));
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(batch[r * n + i].real(), row[i].real())
            << "m=" << m << " r=" << r << " i=" << i;
        EXPECT_EQ(batch[r * n + i].imag(), row[i].imag())
            << "m=" << m << " r=" << r << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace wlansim::dsp
