#include "dsp/fir.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dsp/mathutil.h"
#include "dsp/rng.h"

namespace wlansim::dsp {
namespace {

TEST(FirDesign, RejectsBadParameters) {
  EXPECT_THROW(design_lowpass_fir(4, 0.2), std::invalid_argument);   // even
  EXPECT_THROW(design_lowpass_fir(1, 0.2), std::invalid_argument);   // too short
  EXPECT_THROW(design_lowpass_fir(31, 0.0), std::invalid_argument);  // cutoff
  EXPECT_THROW(design_lowpass_fir(31, 0.5), std::invalid_argument);
  EXPECT_THROW(design_bandpass_fir(31, 0.3, 0.2), std::invalid_argument);
}

TEST(FirDesign, LowpassHasUnityDcGainAndStopbandRejection) {
  const RVec h = design_lowpass_fir(63, 0.125);
  FirFilter f(h);
  EXPECT_NEAR(std::abs(f.response(0.0)), 1.0, 1e-9);
  // Passband center.
  EXPECT_NEAR(std::abs(f.response(0.05)), 1.0, 0.02);
  // Deep stopband.
  EXPECT_LT(to_db(std::norm(f.response(0.3))), -40.0);
  EXPECT_LT(to_db(std::norm(f.response(0.45))), -40.0);
}

TEST(FirDesign, HighpassIsSpectralInverse) {
  const RVec h = design_highpass_fir(63, 0.125);
  FirFilter f(h);
  EXPECT_NEAR(std::abs(f.response(0.5)), 1.0, 0.01);
  EXPECT_LT(std::abs(f.response(0.0)), 1e-9);
  EXPECT_LT(to_db(std::norm(f.response(0.02))), -30.0);
}

TEST(FirDesign, BandpassPassesCenterRejectsEdges) {
  const RVec h = design_bandpass_fir(95, 0.1, 0.2);
  FirFilter f(h);
  EXPECT_NEAR(std::abs(f.response(0.15)), 1.0, 0.05);
  EXPECT_LT(to_db(std::norm(f.response(0.02))), -30.0);
  EXPECT_LT(to_db(std::norm(f.response(0.35))), -30.0);
}

TEST(FirDesign, KaiserMeetsAttenuationSpec) {
  const RVec h = design_kaiser_lowpass(0.2, 0.05, 60.0);
  FirFilter f(h);
  // Stopband starts roughly at cutoff + transition/2.
  for (double fr = 0.26; fr < 0.5; fr += 0.02) {
    EXPECT_LT(to_db(std::norm(f.response(fr))), -55.0) << "f=" << fr;
  }
  EXPECT_NEAR(std::abs(f.response(0.0)), 1.0, 1e-9);
}

TEST(FirFilter, ImpulseResponseEqualsTaps) {
  const RVec taps = {0.25, 0.5, 0.25};
  FirFilter f(taps);
  CVec impulse(6, Cplx{0.0, 0.0});
  impulse[0] = 1.0;
  const CVec y = f.process(impulse);
  EXPECT_NEAR(y[0].real(), 0.25, 1e-15);
  EXPECT_NEAR(y[1].real(), 0.5, 1e-15);
  EXPECT_NEAR(y[2].real(), 0.25, 1e-15);
  EXPECT_NEAR(std::abs(y[3]), 0.0, 1e-15);
}

TEST(FirFilter, StreamingMatchesBlockProcessing) {
  Rng rng(9);
  const RVec taps = design_lowpass_fir(31, 0.2);
  CVec x(200);
  for (Cplx& v : x) v = rng.cgaussian(1.0);

  FirFilter whole(taps);
  const CVec ref = whole.process(x);

  FirFilter chunked(taps);
  CVec got;
  for (std::size_t i = 0; i < x.size(); i += 17) {
    const std::size_t len = std::min<std::size_t>(17, x.size() - i);
    const CVec part = chunked.process(std::span<const Cplx>(x).subspan(i, len));
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_NEAR(std::abs(got[i] - ref[i]), 0.0, 1e-12);
}

TEST(FirFilter, ResetClearsState) {
  const RVec taps = {1.0, 1.0};
  FirFilter f(taps);
  f.step(Cplx{5.0, 0.0});
  f.reset();
  EXPECT_NEAR(f.step(Cplx{1.0, 0.0}).real(), 1.0, 1e-15);
}

TEST(FilterAligned, PreservesLengthAndAlignment) {
  const RVec taps = design_lowpass_fir(41, 0.2);
  CVec x(100, Cplx{0.0, 0.0});
  x[50] = 1.0;  // impulse in the middle
  const CVec y = filter_aligned(taps, x);
  ASSERT_EQ(y.size(), x.size());
  // Peak of the filtered impulse must stay at index 50.
  std::size_t peak = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (std::abs(y[i]) > best) {
      best = std::abs(y[i]);
      peak = i;
    }
  }
  EXPECT_EQ(peak, 50u);
}

TEST(FirFilter, GroupDelayReported) {
  FirFilter f(design_lowpass_fir(41, 0.2));
  EXPECT_DOUBLE_EQ(f.group_delay(), 20.0);
}

}  // namespace
}  // namespace wlansim::dsp
