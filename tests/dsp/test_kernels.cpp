// The kernel layer's exactness contract: the runtime-dispatched entries
// must be componentwise-identical to the scalar reference in every build
// (the native TU keeps FP contraction off and fixes the reduction orders),
// and the streaming kernels must reproduce FirFilter's classic per-sample
// arithmetic bit for bit.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "dsp/fir.h"
#include "dsp/kernels.h"
#include "dsp/resample.h"
#include "dsp/types.h"

namespace wlansim::dsp {
namespace {

CVec random_cvec(std::size_t n, std::mt19937_64& gen) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  CVec v(n);
  for (Cplx& x : v) x = Cplx{d(gen), d(gen)};
  return v;
}

RVec random_rvec(std::size_t n, std::mt19937_64& gen) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  RVec v(n);
  for (double& x : v) x = d(gen);
  return v;
}

void expect_exact(const CVec& a, const CVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real()) << "i=" << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << "i=" << i;
  }
}

TEST(Kernels, ActivePathIsNamed) {
  const char* p = kernels::active_path();
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(std::string(p) == "scalar" || std::string(p) == "native");
}

TEST(Kernels, MixConstLoMatchesReference) {
  std::mt19937_64 gen(11);
  const CVec in = random_cvec(501, gen);
  kernels::MixParams p;
  p.gain = 1.234;
  p.image_amp = 0.01;
  p.iq_eps = 0.98;
  p.iq_sin = std::sin(0.02);
  p.iq_cos = std::cos(0.02);
  p.iq_active = true;
  p.dc = Cplx{1e-3, -2e-3};
  const Cplx lo{std::cos(0.7), std::sin(0.7)};
  CVec a(in.size()), b(in.size());
  kernels::mix_const_lo(in.data(), in.size(), lo, p, a.data());
  kernels::ref::mix_const_lo(in.data(), in.size(), lo, p, b.data());
  expect_exact(a, b);

  // All impairments off: the plain-gain specialization.
  kernels::MixParams plain;
  plain.gain = 0.5;
  kernels::mix_const_lo(in.data(), in.size(), lo, plain, a.data());
  kernels::ref::mix_const_lo(in.data(), in.size(), lo, plain, b.data());
  expect_exact(a, b);
}

TEST(Kernels, MixPhaseMatchesReference) {
  std::mt19937_64 gen(12);
  const CVec in = random_cvec(257, gen);
  const RVec phase = random_rvec(in.size(), gen);
  kernels::MixParams p;
  p.gain = 0.9;
  p.image_amp = 0.05;
  CVec a(in.size()), b(in.size());
  kernels::mix_phase(in.data(), phase.data(), in.size(), p, a.data());
  kernels::ref::mix_phase(in.data(), phase.data(), in.size(), p, b.data());
  expect_exact(a, b);
}

TEST(Kernels, FirStreamMatchesStep) {
  std::mt19937_64 gen(13);
  const RVec taps = random_rvec(33, gen);
  const CVec in = random_cvec(300, gen);

  FirFilter stepwise(taps);
  CVec want(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) want[i] = stepwise.step(in[i]);

  // Through the kernel (FirFilter::process_into is a thin wrapper, but
  // exercise the raw entry too), split across two chunks so the carried
  // delay-line state is covered.
  FirFilter blockwise(taps);
  CVec got(in.size());
  blockwise.process_into(std::span<const Cplx>(in).first(101),
                         std::span<Cplx>(got).first(101));
  blockwise.process_into(std::span<const Cplx>(in).subspan(101),
                         std::span<Cplx>(got).subspan(101));
  expect_exact(got, want);
}

TEST(Kernels, FirStreamDispatchMatchesReference) {
  std::mt19937_64 gen(14);
  const RVec taps = random_rvec(21, gen);
  const CVec in = random_cvec(190, gen);
  CVec delay_a(2 * taps.size(), Cplx{0.0, 0.0});
  CVec delay_b(2 * taps.size(), Cplx{0.0, 0.0});
  CVec a(in.size()), b(in.size());
  const std::size_t pa = kernels::fir_stream(
      taps.data(), taps.size(), delay_a.data(), 0, in.data(), in.size(),
      a.data());
  const std::size_t pb = kernels::ref::fir_stream(
      taps.data(), taps.size(), delay_b.data(), 0, in.data(), in.size(),
      b.data());
  EXPECT_EQ(pa, pb);
  expect_exact(a, b);
  expect_exact(delay_a, delay_b);
}

TEST(Kernels, FirStreamDecimMatchesKeptOutputs) {
  std::mt19937_64 gen(15);
  const RVec taps = random_rvec(27, gen);
  for (const std::size_t decim : {std::size_t{2}, std::size_t{4}}) {
    const CVec in = random_cvec(64 * decim, gen);

    FirFilter stepwise(taps);
    CVec want;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const Cplx y = stepwise.step(in[i]);
      if (i % decim == 0) want.push_back(y);
    }

    FirFilter decimating(taps);
    CVec got(want.size());
    decimating.process_decim_into(in, decim, got);
    expect_exact(got, want);
  }
}

TEST(Kernels, FirInterpMatchesZeroStuffedStream) {
  std::mt19937_64 gen(16);
  for (const std::size_t os : {std::size_t{2}, std::size_t{4}}) {
    const RVec& taps = resampling_taps(os);
    const CVec src = random_cvec(200, gen);
    const std::size_t nout = (src.size() + 16) * os;
    const double scale = static_cast<double>(os);

    // Reference: zero-stuff + scale, stream from cleared state.
    CVec stuffed(nout, Cplx{0.0, 0.0});
    for (std::size_t i = 0; i < src.size(); ++i)
      stuffed[i * os] = scale * src[i];
    FirFilter f(taps);
    CVec want(nout);
    f.process_into(stuffed, want);

    CVec got(nout);
    kernels::fir_interp(taps.data(), taps.size(), os, src.data(), src.size(),
                        scale, got.data(), nout);
    expect_exact(got, want);
  }
}

TEST(Kernels, PowerSumAndEvmMatchReference) {
  std::mt19937_64 gen(17);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{257}}) {
    const CVec x = random_cvec(n, gen);
    const CVec y = random_cvec(n, gen);
    EXPECT_EQ(kernels::power_sum(x.data(), n),
              kernels::ref::power_sum(x.data(), n));
    double e1 = 0.25, r1 = 0.5, e2 = 0.25, r2 = 0.5;  // nonzero carry-in
    kernels::evm_accum(x.data(), y.data(), n, &e1, &r1);
    kernels::ref::evm_accum(x.data(), y.data(), n, &e2, &r2);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(r1, r2);
  }
}

TEST(Kernels, ScaleAndAddScaledPairsMatchReference) {
  std::mt19937_64 gen(18);
  const RVec base = random_rvec(129, gen);
  RVec a = base, b = base;
  kernels::scale(a.data(), a.size(), 0.8125);
  kernels::ref::scale(b.data(), b.size(), 0.8125);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  const CVec cbase = random_cvec(77, gen);
  const RVec units = random_rvec(2 * cbase.size(), gen);
  CVec ca = cbase, cb = cbase;
  kernels::add_scaled_pairs(ca.data(), ca.size(), 0.37, units.data());
  kernels::ref::add_scaled_pairs(cb.data(), cb.size(), 0.37, units.data());
  expect_exact(ca, cb);

  // And the semantic definition: a[i] += Cplx{s*u0, s*u1}.
  CVec cc = cbase;
  for (std::size_t i = 0; i < cc.size(); ++i)
    cc[i] += Cplx{0.37 * units[2 * i], 0.37 * units[2 * i + 1]};
  expect_exact(ca, cc);
}

}  // namespace
}  // namespace wlansim::dsp
