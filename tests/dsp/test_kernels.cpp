// The kernel layer's exactness contract: the runtime-dispatched entries
// must be componentwise-identical to the scalar reference in every build
// (the native TU keeps FP contraction off and fixes the reduction orders),
// and the streaming kernels must reproduce FirFilter's classic per-sample
// arithmetic bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <utility>

#include "dsp/fir.h"
#include "dsp/kernels.h"
#include "dsp/resample.h"
#include "dsp/types.h"

namespace wlansim::dsp {
namespace {

CVec random_cvec(std::size_t n, std::mt19937_64& gen) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  CVec v(n);
  for (Cplx& x : v) x = Cplx{d(gen), d(gen)};
  return v;
}

RVec random_rvec(std::size_t n, std::mt19937_64& gen) {
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  RVec v(n);
  for (double& x : v) x = d(gen);
  return v;
}

void expect_exact(const CVec& a, const CVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].real(), b[i].real()) << "i=" << i;
    EXPECT_EQ(a[i].imag(), b[i].imag()) << "i=" << i;
  }
}

TEST(Kernels, ActivePathIsNamed) {
  const char* p = kernels::active_path();
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(std::string(p) == "scalar" || std::string(p) == "native");
}

TEST(Kernels, MixConstLoMatchesReference) {
  std::mt19937_64 gen(11);
  const CVec in = random_cvec(501, gen);
  kernels::MixParams p;
  p.gain = 1.234;
  p.image_amp = 0.01;
  p.iq_eps = 0.98;
  p.iq_sin = std::sin(0.02);
  p.iq_cos = std::cos(0.02);
  p.iq_active = true;
  p.dc = Cplx{1e-3, -2e-3};
  const Cplx lo{std::cos(0.7), std::sin(0.7)};
  CVec a(in.size()), b(in.size());
  kernels::mix_const_lo(in.data(), in.size(), lo, p, a.data());
  kernels::ref::mix_const_lo(in.data(), in.size(), lo, p, b.data());
  expect_exact(a, b);

  // All impairments off: the plain-gain specialization.
  kernels::MixParams plain;
  plain.gain = 0.5;
  kernels::mix_const_lo(in.data(), in.size(), lo, plain, a.data());
  kernels::ref::mix_const_lo(in.data(), in.size(), lo, plain, b.data());
  expect_exact(a, b);
}

TEST(Kernels, MixPhaseMatchesReference) {
  std::mt19937_64 gen(12);
  const CVec in = random_cvec(257, gen);
  const RVec phase = random_rvec(in.size(), gen);
  kernels::MixParams p;
  p.gain = 0.9;
  p.image_amp = 0.05;
  CVec a(in.size()), b(in.size());
  kernels::mix_phase(in.data(), phase.data(), in.size(), p, a.data());
  kernels::ref::mix_phase(in.data(), phase.data(), in.size(), p, b.data());
  expect_exact(a, b);
}

TEST(Kernels, FirStreamMatchesStep) {
  std::mt19937_64 gen(13);
  const RVec taps = random_rvec(33, gen);
  const CVec in = random_cvec(300, gen);

  FirFilter stepwise(taps);
  CVec want(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) want[i] = stepwise.step(in[i]);

  // Through the kernel (FirFilter::process_into is a thin wrapper, but
  // exercise the raw entry too), split across two chunks so the carried
  // delay-line state is covered.
  FirFilter blockwise(taps);
  CVec got(in.size());
  blockwise.process_into(std::span<const Cplx>(in).first(101),
                         std::span<Cplx>(got).first(101));
  blockwise.process_into(std::span<const Cplx>(in).subspan(101),
                         std::span<Cplx>(got).subspan(101));
  expect_exact(got, want);
}

TEST(Kernels, FirStreamDispatchMatchesReference) {
  std::mt19937_64 gen(14);
  const RVec taps = random_rvec(21, gen);
  const CVec in = random_cvec(190, gen);
  CVec delay_a(2 * taps.size(), Cplx{0.0, 0.0});
  CVec delay_b(2 * taps.size(), Cplx{0.0, 0.0});
  CVec a(in.size()), b(in.size());
  const std::size_t pa = kernels::fir_stream(
      taps.data(), taps.size(), delay_a.data(), 0, in.data(), in.size(),
      a.data());
  const std::size_t pb = kernels::ref::fir_stream(
      taps.data(), taps.size(), delay_b.data(), 0, in.data(), in.size(),
      b.data());
  EXPECT_EQ(pa, pb);
  expect_exact(a, b);
  expect_exact(delay_a, delay_b);
}

TEST(Kernels, FirStreamDecimMatchesKeptOutputs) {
  std::mt19937_64 gen(15);
  const RVec taps = random_rvec(27, gen);
  for (const std::size_t decim : {std::size_t{2}, std::size_t{4}}) {
    const CVec in = random_cvec(64 * decim, gen);

    FirFilter stepwise(taps);
    CVec want;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const Cplx y = stepwise.step(in[i]);
      if (i % decim == 0) want.push_back(y);
    }

    FirFilter decimating(taps);
    CVec got(want.size());
    decimating.process_decim_into(in, decim, got);
    expect_exact(got, want);
  }
}

TEST(Kernels, FirStreamDecimFlatPathMatchesStepwiseAcrossCalls) {
  // Long blocks take the flat fast path (dots straight off the input, eight
  // in flight, delay line rebuilt at the end). Outputs AND the carried
  // filter state must stay bit-identical to per-sample stepping — the
  // second and third calls only see the right answers if the first call's
  // delay/pos writeback reproduced the streaming state exactly. Covers
  // block lengths that are not multiples of decim and a real 119-tap
  // resampling filter alongside a short one.
  std::mt19937_64 gen(35);
  for (const std::size_t ntaps : {std::size_t{27}, std::size_t{119}}) {
    const RVec taps = random_rvec(ntaps, gen);
    for (const std::size_t decim : {std::size_t{2}, std::size_t{4}}) {
      FirFilter stepwise(taps);
      FirFilter decimating(taps);
      // Mix of long blocks (flat path), a short block (rolling path), and
      // lengths that are not multiples of decim. The phase counter restarts
      // at 0 each call; only the delay line carries over, so the stepwise
      // model keeps local indices i % decim == 0.
      for (const std::size_t m :
           {8 * ntaps, 8 * ntaps + 3, ntaps / 2, 8 * ntaps + 1}) {
        const CVec in = random_cvec(m, gen);
        CVec want;
        for (std::size_t i = 0; i < m; ++i) {
          const Cplx y = stepwise.step(in[i]);
          if (i % decim == 0) want.push_back(y);
        }
        CVec got(want.size());
        decimating.process_decim_into(in, decim, got);
        expect_exact(got, want);
      }
    }
  }
}

TEST(Kernels, FirStreamDecimFlatPathStateMatchesRolling) {
  // The fast path's final delay-line contents and returned position must
  // equal the rolling formulation's, slot for slot (both mirrored halves).
  std::mt19937_64 gen(36);
  const RVec taps = random_rvec(31, gen);
  const std::size_t nt = taps.size();
  for (const std::size_t m : {2 * nt, 8 * nt + 5, 3 * nt + 1}) {
    const CVec in = random_cvec(m, gen);
    const std::size_t decim = 4;
    const std::size_t nout = (m + decim - 1) / decim;

    CVec delay_k(2 * nt, Cplx{0.0, 0.0});
    CVec out_k(nout);
    const std::size_t pos_k =
        kernels::fir_stream_decim(taps.data(), nt, delay_k.data(), 0,
                                  in.data(), m, decim, out_k.data());

    // Trusted rolling model, written out longhand.
    CVec delay_r(2 * nt, Cplx{0.0, 0.0});
    CVec out_r(nout);
    std::size_t pos_r = 0, o = 0;
    for (std::size_t i = 0; i < m; ++i) {
      pos_r = (pos_r == 0) ? nt - 1 : pos_r - 1;
      delay_r[pos_r] = delay_r[pos_r + nt] = in[i];
      if (i % decim == 0) {
        double re = 0.0, im = 0.0;
        for (std::size_t k = 0; k < nt; ++k) {
          re += taps[k] * delay_r[pos_r + k].real();
          im += taps[k] * delay_r[pos_r + k].imag();
        }
        out_r[o++] = Cplx{re, im};
      }
    }
    EXPECT_EQ(pos_k, pos_r) << "m=" << m;
    expect_exact(out_k, out_r);
    expect_exact(delay_k, delay_r);
  }
}

TEST(Kernels, FirInterpMatchesZeroStuffedStream) {
  std::mt19937_64 gen(16);
  for (const std::size_t os : {std::size_t{2}, std::size_t{4}}) {
    const RVec& taps = resampling_taps(os);
    const CVec src = random_cvec(200, gen);
    const std::size_t nout = (src.size() + 16) * os;
    const double scale = static_cast<double>(os);

    // Reference: zero-stuff + scale, stream from cleared state.
    CVec stuffed(nout, Cplx{0.0, 0.0});
    for (std::size_t i = 0; i < src.size(); ++i)
      stuffed[i * os] = scale * src[i];
    FirFilter f(taps);
    CVec want(nout);
    f.process_into(stuffed, want);

    CVec got(nout);
    kernels::fir_interp(taps.data(), taps.size(), os, src.data(), src.size(),
                        scale, got.data(), nout);
    expect_exact(got, want);
  }
}

TEST(Kernels, PowerSumAndEvmMatchReference) {
  std::mt19937_64 gen(17);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{257}}) {
    const CVec x = random_cvec(n, gen);
    const CVec y = random_cvec(n, gen);
    EXPECT_EQ(kernels::power_sum(x.data(), n),
              kernels::ref::power_sum(x.data(), n));
    double e1 = 0.25, r1 = 0.5, e2 = 0.25, r2 = 0.5;  // nonzero carry-in
    kernels::evm_accum(x.data(), y.data(), n, &e1, &r1);
    kernels::ref::evm_accum(x.data(), y.data(), n, &e2, &r2);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(r1, r2);
  }
}

TEST(Kernels, ScaleAndAddScaledPairsMatchReference) {
  std::mt19937_64 gen(18);
  const RVec base = random_rvec(129, gen);
  RVec a = base, b = base;
  kernels::scale(a.data(), a.size(), 0.8125);
  kernels::ref::scale(b.data(), b.size(), 0.8125);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);

  const CVec cbase = random_cvec(77, gen);
  const RVec units = random_rvec(2 * cbase.size(), gen);
  CVec ca = cbase, cb = cbase;
  kernels::add_scaled_pairs(ca.data(), ca.size(), 0.37, units.data());
  kernels::ref::add_scaled_pairs(cb.data(), cb.size(), 0.37, units.data());
  expect_exact(ca, cb);

  // And the semantic definition: a[i] += Cplx{s*u0, s*u1}.
  CVec cc = cbase;
  for (std::size_t i = 0; i < cc.size(); ++i)
    cc[i] += Cplx{0.37 * units[2 * i], 0.37 * units[2 * i + 1]};
  expect_exact(ca, cc);
}

TEST(Kernels, QuantizeClampMatchesStdRoundBitExactly) {
  // quantize_clamp computes std::round arithmetically; it must be
  // bit-identical (including the sign of zero) to the literal
  // clamp(round(v*inv_step)*step, -fs, fs) form for every input —
  // especially the x.5 ties, where round-half-away and the 2^52
  // round-to-nearest-even shift disagree before the tie correction.
  const auto bits = [](double x) {
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof(u));
    return u;
  };
  // step = 0.25 makes v*inv_step exact for v = k/8, so ties are hit
  // exactly; fs slightly off-grid exercises the rail clamp path too.
  for (const auto& [step, fs] : {std::pair{0.25, 1.1}, std::pair{0.1, 1.0}}) {
    const double inv_step = 1.0 / step;
    RVec rails = {0.0,   -0.0,  0.125, -0.125, 0.375,  -0.375, 0.625,
                  1.0,   -1.0,  1.125, -1.125, 5.0,    -5.0,   0.5,
                  -0.5,  1e-12, -1e-12, 0x1p52, -0x1p52, 0x1p52 + 1.0,
                  0x1p52 - 0.5, std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::denorm_min(),
                  -std::numeric_limits<double>::denorm_min()};
    std::mt19937_64 gen(44);
    std::uniform_real_distribution<double> d(-2.0, 2.0);
    for (int i = 0; i < 4096; ++i) rails.push_back(d(gen));
    // Every k/8 grid point across the rails, to sweep all tie parities.
    for (int k = -40; k <= 40; ++k) rails.push_back(k * 0.125);

    ASSERT_EQ(rails.size() % 2, 0u);
    CVec in(rails.size() / 2);
    std::memcpy(in.data(), rails.data(), rails.size() * sizeof(double));
    CVec got(in.size()), got_ref(in.size());
    kernels::quantize_clamp(in.data(), in.size(), inv_step, step, fs,
                            got.data());
    kernels::ref::quantize_clamp(in.data(), in.size(), inv_step, step, fs,
                                 got_ref.data());
    const double* have = reinterpret_cast<const double*>(got.data());
    const double* have_ref = reinterpret_cast<const double*>(got_ref.data());
    for (std::size_t j = 0; j < rails.size(); ++j) {
      const double v = rails[j];
      const double want =
          std::clamp(std::round(v * inv_step) * step, -fs, fs);
      EXPECT_EQ(bits(have[j]), bits(want)) << "v=" << v << " step=" << step;
      EXPECT_EQ(bits(have[j]), bits(have_ref[j])) << "v=" << v;
    }
    // In-place call gives the same answer.
    CVec inplace = in;
    kernels::quantize_clamp(inplace.data(), inplace.size(), inv_step, step,
                            fs, inplace.data());
    expect_exact(inplace, got);
  }
}

TEST(Kernels, CfirConvMatchesComplexLoopAndReference) {
  std::mt19937_64 gen(19);
  for (const std::size_t ntaps : {std::size_t{1}, std::size_t{3},
                                  std::size_t{9}, std::size_t{300}}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{5},
                                std::size_t{256}}) {
      const CVec taps = random_cvec(ntaps, gen);
      const CVec in = random_cvec(n, gen);

      // Semantic definition: the std::complex tapped-delay loop.
      CVec want(n, Cplx{0.0, 0.0});
      for (std::size_t i = 0; i < n; ++i) {
        Cplx acc{0.0, 0.0};
        const std::size_t kmax = std::min(ntaps, i + 1);
        for (std::size_t k = 0; k < kmax; ++k) acc += taps[k] * in[i - k];
        want[i] = acc;
      }

      CVec a(n), b(n);
      kernels::cfir_conv(taps.data(), ntaps, in.data(), n, a.data());
      kernels::ref::cfir_conv(taps.data(), ntaps, in.data(), n, b.data());
      expect_exact(a, want);
      expect_exact(a, b);
    }
  }
}

TEST(Kernels, FftButterfliesBatchDispatchMatchesReference) {
  std::mt19937_64 gen(20);
  for (const std::size_t n : {std::size_t{8}, std::size_t{64}}) {
    CVec twiddle(n / 2);
    for (std::size_t k = 0; k < n / 2; ++k) {
      const double ang = -2.0 * kPi * static_cast<double>(k) /
                         static_cast<double>(n);
      twiddle[k] = Cplx{std::cos(ang), std::sin(ang)};
    }
    for (const std::size_t rows : {std::size_t{1}, std::size_t{7},
                                   std::size_t{32}}) {
      const CVec in = random_cvec(rows * n, gen);
      CVec a = in, b = in;
      kernels::fft_butterflies_batch(a.data(), rows, n, twiddle.data());
      kernels::ref::fft_butterflies_batch(b.data(), rows, n, twiddle.data());
      expect_exact(a, b);
    }
  }
}

}  // namespace
}  // namespace wlansim::dsp
