// The FFT's execution plans — in-place, out-of-place (bit-reversed copy),
// and the process-wide cached fft()/ifft() — must all agree with each other
// and round-trip to the input.
#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/rng.h"

namespace wlansim::dsp {
namespace {

CVec random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CVec x(n);
  for (auto& v : x) v = rng.cgaussian(1.0);
  return x;
}

TEST(FftPlans, OutOfPlaceRoundTrip) {
  for (const std::size_t n : {2u, 4u, 8u, 64u, 256u, 1024u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Fft plan(n);
    const CVec x = random_signal(n, 7 + n);
    CVec spec(n), back(n);
    plan.forward(std::span<const Cplx>(x), std::span<Cplx>(spec));
    plan.inverse(std::span<const Cplx>(spec), std::span<Cplx>(back));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(back[i].real(), x[i].real(), 1e-12);
      EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-12);
    }
  }
}

TEST(FftPlans, InPlaceMatchesOutOfPlaceExactly) {
  for (const std::size_t n : {8u, 64u, 512u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Fft plan(n);
    const CVec x = random_signal(n, 11 + n);

    CVec oop(n);
    plan.forward(std::span<const Cplx>(x), std::span<Cplx>(oop));
    CVec inp = x;
    plan.forward(std::span<Cplx>(inp));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(inp[i].real(), oop[i].real());
      EXPECT_EQ(inp[i].imag(), oop[i].imag());
    }

    CVec oop_inv(n);
    plan.inverse(std::span<const Cplx>(oop), std::span<Cplx>(oop_inv));
    CVec inp_inv = oop;
    plan.inverse(std::span<Cplx>(inp_inv));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(inp_inv[i].real(), oop_inv[i].real());
      EXPECT_EQ(inp_inv[i].imag(), oop_inv[i].imag());
    }
  }
}

TEST(FftPlans, CachedHelpersMatchDedicatedEngine) {
  const std::size_t n = 128;
  const CVec x = random_signal(n, 42);
  const Fft plan(n);
  const CVec ref = plan.forward(std::span<const Cplx>(x));
  const CVec cached = fft(x);
  ASSERT_EQ(cached.size(), ref.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(cached[i].real(), ref[i].real());
    EXPECT_EQ(cached[i].imag(), ref[i].imag());
  }

  const CVec back = ifft(cached);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(back[i].real(), x[i].real(), 1e-12);
    EXPECT_NEAR(back[i].imag(), x[i].imag(), 1e-12);
  }
}

TEST(FftPlans, PlanCacheReturnsSameEngine) {
  const Fft& a = fft_plan(64);
  const Fft& b = fft_plan(64);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 64u);
}

TEST(FftPlans, RejectsBadSizes) {
  EXPECT_THROW(Fft(0), std::invalid_argument);
  EXPECT_THROW(Fft(1), std::invalid_argument);
  EXPECT_THROW(Fft(48), std::invalid_argument);
}

}  // namespace
}  // namespace wlansim::dsp
