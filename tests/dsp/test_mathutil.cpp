#include "dsp/mathutil.h"

#include <cmath>

#include <gtest/gtest.h>

namespace wlansim::dsp {
namespace {

TEST(MathUtil, DbConversionsRoundTrip) {
  EXPECT_NEAR(to_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(to_db(1.0), 0.0, 1e-12);
  EXPECT_NEAR(from_db(3.0), 1.995262, 1e-5);
  for (double db : {-40.0, -3.0, 0.0, 7.5, 30.0}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-10);
  }
}

TEST(MathUtil, DbmConversions) {
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(watts_to_dbm(1e-3), 0.0, 1e-12);
  // Paper's receiver range: -88 dBm to -23 dBm.
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(-88.0)), -88.0, 1e-9);
  EXPECT_NEAR(watts_to_dbm(dbm_to_watts(-23.0)), -23.0, 1e-9);
}

TEST(MathUtil, MeanPowerAndRms) {
  CVec x = {Cplx{3.0, 4.0}, Cplx{0.0, 0.0}};
  EXPECT_NEAR(mean_power(x), 12.5, 1e-12);
  EXPECT_NEAR(rms(x), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(mean_power(CVec{}), 0.0);
}

TEST(MathUtil, SetMeanPowerScalesCorrectly) {
  CVec x = {Cplx{1.0, 0.0}, Cplx{0.0, 2.0}, Cplx{-1.0, 1.0}};
  set_mean_power(x, 5.0);
  EXPECT_NEAR(mean_power(x), 5.0, 1e-12);
  CVec zeros(4, Cplx{0.0, 0.0});
  set_mean_power(zeros, 1.0);  // must not divide by zero
  EXPECT_DOUBLE_EQ(mean_power(zeros), 0.0);
}

TEST(MathUtil, Sinc) {
  EXPECT_DOUBLE_EQ(sinc(0.0), 1.0);
  EXPECT_NEAR(sinc(1.0), 0.0, 1e-12);
  EXPECT_NEAR(sinc(0.5), 2.0 / kPi, 1e-12);
  EXPECT_NEAR(sinc(-0.5), 2.0 / kPi, 1e-12);
}

TEST(MathUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(64), 64u);
  EXPECT_EQ(next_pow2(65), 128u);
  EXPECT_THROW(next_pow2(0), std::invalid_argument);
}

TEST(MathUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(MathUtil, BesselI0MatchesKnownValues) {
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-14);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520084, 1e-10);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-7);
}

TEST(MathUtil, WrapPhase) {
  EXPECT_NEAR(wrap_phase(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_phase(kPi / 2), kPi / 2, 1e-12);
  EXPECT_NEAR(wrap_phase(3.0 * kPi), kPi, 1e-9);
  EXPECT_NEAR(wrap_phase(-3.0 * kPi), kPi, 1e-9);
  EXPECT_NEAR(wrap_phase(kTwoPi * 10 + 0.3), 0.3, 1e-9);
}

}  // namespace
}  // namespace wlansim::dsp
