// Lane-vs-scalar bit identity for the width-W packet-lane (SoA) kernels.
//
// Every lane kernel claims, per lane, the exact operation sequence of the
// scalar block it replaces — same products, same association order — so a
// packed lane must come back EXACTLY equal (std::memcmp-grade, via
// bit-compare of both rails) to the scalar computation on that lane's AoS
// data. Lengths cover the adversarial set {1, W-1, W, W+1, 33} (non-multiple
// tails included) and widths {1, 3, W}: nl == kLaneWidth exercises the
// fixed-width fast instantiation, the others the runtime-width body.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "dsp/fir.h"
#include "dsp/iir.h"
#include "dsp/kernels.h"
#include "dsp/resample.h"
#include "dsp/rng.h"

namespace kn = wlansim::dsp::kernels;
using wlansim::dsp::Cplx;
using wlansim::dsp::CVec;
using wlansim::dsp::RVec;

namespace {

const std::size_t kLens[] = {1, kn::kLaneWidth - 1, kn::kLaneWidth,
                             kn::kLaneWidth + 1, 33};
const std::size_t kWidths[] = {1, 3, kn::kLaneWidth};

bool bit_equal(Cplx a, Cplx b) {
  return std::memcmp(&a, &b, sizeof(Cplx)) == 0;
}

/// Fill every lane of an SoA buffer from per-lane AoS packets and return
/// the packets, so tests can run the scalar reference per lane.
std::vector<CVec> fill_lanes(RVec& soa, std::size_t n, std::size_t nl,
                             std::uint64_t seed) {
  wlansim::dsp::Rng rng(seed);
  std::vector<CVec> lanes(nl);
  soa.assign(2 * n * nl, 0.0);
  for (std::size_t l = 0; l < nl; ++l) {
    lanes[l].resize(n);
    for (auto& v : lanes[l]) v = rng.cgaussian(1.0);
    kn::lanes_pack(lanes[l].data(), n, nl, l, soa.data());
  }
  return lanes;
}

void expect_lane_equals(const RVec& soa, std::size_t n, std::size_t nl,
                        std::size_t lane, const CVec& want) {
  CVec got(n);
  kn::lanes_unpack(soa.data(), n, nl, lane, got.data());
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_TRUE(bit_equal(got[i], want[i]))
        << "lane " << lane << " sample " << i << " n=" << n << " nl=" << nl;
}

/// Run `check(n, nl)` over the adversarial length/width grid.
template <typename F>
void for_grid(F&& check) {
  for (std::size_t n : kLens)
    for (std::size_t nl : kWidths) check(n, nl);
}

}  // namespace

TEST(KernelsLanes, PackUnpackRoundtrip) {
  for_grid([](std::size_t n, std::size_t nl) {
    RVec soa;
    const auto lanes = fill_lanes(soa, n, nl, 7 * n + nl);
    for (std::size_t l = 0; l < nl; ++l) expect_lane_equals(soa, n, nl, l, lanes[l]);
  });
}

TEST(KernelsLanes, UnpackDecimTakesPhaseZero) {
  for (std::size_t decim : {std::size_t{1}, std::size_t{4}}) {
    for_grid([decim](std::size_t n, std::size_t nl) {
      RVec soa;
      const auto lanes = fill_lanes(soa, n, nl, 11 * n + nl + decim);
      const std::size_t m = (n + decim - 1) / decim;
      for (std::size_t l = 0; l < nl; ++l) {
        CVec got(m);
        kn::lanes_unpack_decim(soa.data(), n, nl, l, decim, got.data());
        for (std::size_t t = 0; t < m; ++t)
          ASSERT_TRUE(bit_equal(got[t], lanes[l][t * decim]));
      }
    });
  }
}

TEST(KernelsLanes, AddScaledPairsMatchesScalar) {
  for_grid([](std::size_t n, std::size_t nl) {
    RVec soa;
    auto lanes = fill_lanes(soa, n, nl, 13 * n + nl);
    wlansim::dsp::Rng rng(99);
    const double s = 0.37;
    for (std::size_t l = 0; l < nl; ++l) {
      RVec units(2 * n);
      rng.fill_gaussian(units.data(), units.size());
      kn::lanes_add_scaled_pairs(soa.data(), n, nl, l, s, units.data());
      kn::ref::add_scaled_pairs(lanes[l].data(), n, s, units.data());
      expect_lane_equals(soa, n, nl, l, lanes[l]);
    }
  });
}

TEST(KernelsLanes, WriteScaledPairsMatchesFlickerDrive) {
  for_grid([](std::size_t n, std::size_t nl) {
    RVec soa;
    fill_lanes(soa, n, nl, 17 * n + nl);  // overwritten; exercises old data
    wlansim::dsp::Rng rng(5);
    const double s0 = std::sqrt(1.0 / 2.0);
    const double s1 = 3.25e-4;
    for (std::size_t l = 0; l < nl; ++l) {
      RVec units(2 * n);
      rng.fill_gaussian(units.data(), units.size());
      kn::lanes_write_scaled_pairs(soa.data(), n, nl, l, s0, s1, units.data());
      // The flicker drive: cgaussian(1) * drive, left-associated per rail.
      CVec want(n);
      for (std::size_t i = 0; i < n; ++i)
        want[i] = Cplx{(s0 * units[2 * i]) * s1, (s0 * units[2 * i + 1]) * s1};
      expect_lane_equals(soa, n, nl, l, want);
    }
  });
}

TEST(KernelsLanes, AddScaledPairsMultiMatchesPerLane) {
  // The fused all-lanes pass must be bit-identical to nl per-lane passes:
  // every element op is the same multiply-add, only the iteration order over
  // independent elements changes.
  for_grid([](std::size_t n, std::size_t nl) {
    RVec soa_multi;
    fill_lanes(soa_multi, n, nl, 43 * n + nl);
    RVec soa_per = soa_multi;
    wlansim::dsp::Rng rng(57);
    const double s = 0.37;
    std::vector<RVec> units(nl);
    std::vector<const double*> ptrs(nl);
    for (std::size_t l = 0; l < nl; ++l) {
      units[l].resize(2 * n);
      rng.fill_gaussian(units[l].data(), units[l].size());
      ptrs[l] = units[l].data();
    }
    kn::lanes_add_scaled_pairs_multi(soa_multi.data(), n, nl, s, ptrs.data());
    for (std::size_t l = 0; l < nl; ++l)
      kn::lanes_add_scaled_pairs(soa_per.data(), n, nl, l, s, units[l].data());
    ASSERT_EQ(std::memcmp(soa_multi.data(), soa_per.data(),
                          soa_multi.size() * 8), 0)
        << "n=" << n << " nl=" << nl;
  });
}

TEST(KernelsLanes, WriteScaledPairsMultiMatchesPerLane) {
  for_grid([](std::size_t n, std::size_t nl) {
    RVec soa_multi;
    fill_lanes(soa_multi, n, nl, 47 * n + nl);  // stale data, overwritten
    RVec soa_per = soa_multi;
    wlansim::dsp::Rng rng(58);
    const double s0 = std::sqrt(1.0 / 2.0);
    const double s1 = 3.25e-4;
    std::vector<RVec> units(nl);
    std::vector<const double*> ptrs(nl);
    for (std::size_t l = 0; l < nl; ++l) {
      units[l].resize(2 * n);
      rng.fill_gaussian(units[l].data(), units[l].size());
      ptrs[l] = units[l].data();
    }
    kn::lanes_write_scaled_pairs_multi(soa_multi.data(), n, nl, s0, s1,
                                       ptrs.data());
    for (std::size_t l = 0; l < nl; ++l)
      kn::lanes_write_scaled_pairs(soa_per.data(), n, nl, l, s0, s1,
                                   units[l].data());
    ASSERT_EQ(std::memcmp(soa_multi.data(), soa_per.data(),
                          soa_multi.size() * 8), 0)
        << "n=" << n << " nl=" << nl;
  });
}

TEST(KernelsLanes, AddIsElementwise) {
  wlansim::dsp::Rng rng(21);
  for (std::size_t count : {std::size_t{1}, std::size_t{16}, std::size_t{67}}) {
    RVec dst(count), src(count), want(count);
    rng.fill_gaussian(dst.data(), count);
    rng.fill_gaussian(src.data(), count);
    for (std::size_t j = 0; j < count; ++j) want[j] = dst[j] + src[j];
    kn::lanes_add(dst.data(), src.data(), count);
    for (std::size_t j = 0; j < count; ++j)
      ASSERT_EQ(std::memcmp(&dst[j], &want[j], sizeof(double)), 0);
  }
}

TEST(KernelsLanes, BiquadMatchesScalarSection) {
  // A realistic section from the Chebyshev channel filter design.
  const wlansim::dsp::BiquadCascade c =
      wlansim::dsp::design_chebyshev1_lowpass(7, 1.0, 0.1075);
  ASSERT_GT(c.num_sections(), 0u);
  for_grid([&](std::size_t n, std::size_t nl) {
    RVec soa;
    auto lanes = fill_lanes(soa, n, nl, 29 * n + nl);
    for (const wlansim::dsp::Biquad& sec : c.sections()) {
      RVec state(4 * nl, 0.0);
      kn::lanes_biquad(soa.data(), n, nl, sec.b0, sec.b1, sec.b2, sec.a1,
                       sec.a2, state.data());
      for (std::size_t l = 0; l < nl; ++l) {
        wlansim::dsp::Biquad ref = sec;
        ref.reset();
        for (auto& v : lanes[l]) v = ref.step(v);
        expect_lane_equals(soa, n, nl, l, lanes[l]);
      }
    }
  });
}

TEST(KernelsLanes, BiquadStateCarriesAcrossTiles) {
  // Two half-length calls with carried state == one whole-buffer call: the
  // property the fused lane tile loop relies on.
  const wlansim::dsp::Biquad sec{0.9, -1.7, 0.82, -1.6, 0.71};
  const std::size_t n = 33, nl = kn::kLaneWidth;
  RVec whole, tiled;
  fill_lanes(whole, n, nl, 123);
  tiled = whole;
  RVec sw(4 * nl, 0.0), st(4 * nl, 0.0);
  kn::lanes_biquad(whole.data(), n, nl, sec.b0, sec.b1, sec.b2, sec.a1, sec.a2,
                   sw.data());
  const std::size_t n1 = 13;
  kn::lanes_biquad(tiled.data(), n1, nl, sec.b0, sec.b1, sec.b2, sec.a1,
                   sec.a2, st.data());
  kn::lanes_biquad(tiled.data() + 2 * nl * n1, n - n1, nl, sec.b0, sec.b1,
                   sec.b2, sec.a1, sec.a2, st.data());
  ASSERT_EQ(std::memcmp(whole.data(), tiled.data(), whole.size() * 8), 0);
  ASSERT_EQ(std::memcmp(sw.data(), st.data(), sw.size() * 8), 0);
}

TEST(KernelsLanes, MixUnityLoMatchesScalar) {
  kn::MixParams cases[3];
  cases[0].gain = 2.51;                       // plain gain + dc
  cases[0].dc = Cplx{3e-5, 2e-5};
  cases[1] = cases[0];
  cases[1].image_amp = 0.01;                  // finite image rejection
  cases[2] = cases[1];
  cases[2].iq_active = true;                  // full I/Q imbalance stage
  cases[2].iq_eps = 1.02;
  cases[2].iq_sin = 0.015;
  cases[2].iq_cos = std::sqrt(1.0 - 0.015 * 0.015);
  for (const kn::MixParams& p : cases) {
    for_grid([&](std::size_t n, std::size_t nl) {
      RVec soa;
      auto lanes = fill_lanes(soa, n, nl, 31 * n + nl);
      kn::lanes_mix_unity_lo(soa.data(), n, nl, p);
      for (std::size_t l = 0; l < nl; ++l) {
        kn::mix_const_lo(lanes[l].data(), n, Cplx{1.0, 0.0}, p,
                         lanes[l].data());
        expect_lane_equals(soa, n, nl, l, lanes[l]);
      }
    });
  }
}

TEST(KernelsLanes, AmpRappP2MatchesScalarFormula) {
  const double lin_gain = 5.62, lin_gain2 = lin_gain * lin_gain;
  const double inv_vsat2 = 1.0 / 0.031623;
  for_grid([&](std::size_t n, std::size_t nl) {
    RVec soa;
    auto lanes = fill_lanes(soa, n, nl, 37 * n + nl);
    kn::lanes_amp_rapp_p2(soa.data(), n, nl, lin_gain, lin_gain2, inv_vsat2);
    for (std::size_t l = 0; l < nl; ++l) {
      for (auto& v : lanes[l]) {
        const double n2 = v.real() * v.real() + v.imag() * v.imag();
        const double r2 = (lin_gain2 * n2) * inv_vsat2;
        const double g = lin_gain / std::sqrt(std::sqrt(1.0 + r2 * r2));
        v = Cplx{v.real() * g, v.imag() * g};
      }
      expect_lane_equals(soa, n, nl, l, lanes[l]);
    }
  });
}

TEST(KernelsLanes, FirDecimMatchesStreamingFilter) {
  const RVec taps = wlansim::dsp::resampling_taps(4);
  for (std::size_t decim : {std::size_t{1}, std::size_t{4}}) {
    for_grid([&](std::size_t n, std::size_t nl) {
      RVec soa;
      const auto lanes = fill_lanes(soa, n, nl, 41 * n + nl + decim);
      const std::size_t m = (n + decim - 1) / decim;
      for (std::size_t l = 0; l < nl; ++l) {
        CVec got(m);
        kn::lanes_fir_decim(soa.data(), n, nl, l, taps.data(), taps.size(),
                            decim, got.data());
        wlansim::dsp::FirFilter f(taps);
        f.reset();
        CVec want(m);
        f.process_decim_into(lanes[l], decim, want);
        for (std::size_t t = 0; t < m; ++t)
          ASSERT_TRUE(bit_equal(got[t], want[t]))
              << "t=" << t << " n=" << n << " nl=" << nl << " d=" << decim;
      }
    });
  }
}

// The dispatched entry points must agree with the reference namespace
// whatever target make_table picked (generic or native).
TEST(KernelsLanes, DispatchedAgreesWithRef) {
  const std::size_t n = 33, nl = kn::kLaneWidth;
  RVec a, b;
  fill_lanes(a, n, nl, 777);
  b = a;

  kn::MixParams p;
  p.gain = 2.51;
  p.image_amp = 0.01;
  p.dc = Cplx{3e-5, 2e-5};
  kn::lanes_mix_unity_lo(a.data(), n, nl, p);
  kn::ref::lanes_mix_unity_lo(b.data(), n, nl, p);
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * 8), 0);

  kn::lanes_amp_rapp_p2(a.data(), n, nl, 5.6, 31.36, 31.6);
  kn::ref::lanes_amp_rapp_p2(b.data(), n, nl, 5.6, 31.36, 31.6);
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * 8), 0);

  RVec sa(4 * nl, 0.0), sb(4 * nl, 0.0);
  kn::lanes_biquad(a.data(), n, nl, 0.9, -1.7, 0.82, -1.6, 0.71, sa.data());
  kn::ref::lanes_biquad(b.data(), n, nl, 0.9, -1.7, 0.82, -1.6, 0.71,
                        sb.data());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * 8), 0);
  ASSERT_EQ(std::memcmp(sa.data(), sb.data(), sa.size() * 8), 0);

  wlansim::dsp::Rng rng(91);
  std::vector<RVec> units(nl);
  std::vector<const double*> ptrs(nl);
  for (std::size_t l = 0; l < nl; ++l) {
    units[l].resize(2 * n);
    rng.fill_gaussian(units[l].data(), units[l].size());
    ptrs[l] = units[l].data();
  }
  kn::lanes_add_scaled_pairs_multi(a.data(), n, nl, 0.37, ptrs.data());
  kn::ref::lanes_add_scaled_pairs_multi(b.data(), n, nl, 0.37, ptrs.data());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * 8), 0);

  kn::lanes_write_scaled_pairs_multi(a.data(), n, nl, 0.7, 3e-4, ptrs.data());
  kn::ref::lanes_write_scaled_pairs_multi(b.data(), n, nl, 0.7, 3e-4,
                                          ptrs.data());
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * 8), 0);
}

TEST(KernelsLanes, ImplNameReportsLaneWidth) {
  const std::string name = kn::impl_name();
  EXPECT_NE(name.find("lane width 8"), std::string::npos) << name;
}
